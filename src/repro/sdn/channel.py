"""The controller <-> switch control channel.

Control messages (packet-in, flow-mod, posture updates, context events)
travel over this channel with a configurable one-way latency, so control-
plane responsiveness is measurable in simulated time -- the core question of
the paper's section 5.1.

The channel is deliberately message-type agnostic: it delivers
:class:`ControlMessage` envelopes and lets endpoints dispatch on ``kind``.

Resilience
----------
The paper puts *all* enforcement behind this channel, which makes a lost
control message a security event: the device silently stays in (or reverts
to) its vulnerable default.  Two additions model and mitigate that:

- a deterministic **fault model** (:class:`FaultModel`): seeded random
  drops, seeded extra delay, and partition windows in simulated time --
  injected with :meth:`ControlChannel.inject_faults`, so every chaos run is
  reproducible;
- **at-least-once delivery** (``send(..., reliable=True)``): per-message
  ack + timeout, exponential backoff with a retry cap, and sequence-number
  dedup on the receiver so the application layer sees each message exactly
  once however many times the wire needed.  Every drop, retry, duplicate
  and give-up is journaled and counted.

``call`` extends the same machinery to RPC-style delivery (the consistent
updater's install/flip messages), keeping two-phase epochs correct under
retransmission: the dedup layer guarantees each flow-mod applies at most
once, and the retry layer guarantees it eventually applies unless the
channel gives up -- which is journaled, never silent.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Event, Simulator

_MSG_IDS = itertools.count(1)


@dataclass(slots=True)
class ControlMessage:
    """An envelope on the control channel."""

    kind: str
    sender: str
    body: dict[str, Any] = field(default_factory=dict)
    sent_at: float = 0.0
    msg_id: int = field(default_factory=lambda: next(_MSG_IDS))


@dataclass(frozen=True)
class PartitionWindow:
    """A simulated-time interval during which messages are lost.

    ``endpoints`` restricts the partition to traffic *to* those endpoints;
    ``None`` partitions the whole channel (controller unreachable).
    """

    start: float
    end: float
    endpoints: frozenset[str] | None = None

    def covers(self, now: float, to: str) -> bool:
        if not (self.start <= now < self.end):
            return False
        return self.endpoints is None or to in self.endpoints


class FaultModel:
    """Deterministic control-channel faults, all seeded, all sim-time.

    ``drop_prob`` loses each transmission independently; ``jitter`` adds a
    uniform extra delay in ``[0, jitter]`` to surviving ones; partition
    windows lose everything to the covered endpoints for their duration.
    The model owns its RNG, so two runs with the same seed and the same
    send sequence observe the identical fault pattern.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_prob: float = 0.0,
        jitter: float = 0.0,
        partitions: tuple[PartitionWindow, ...] = (),
    ) -> None:
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError(f"drop_prob must be in [0, 1) (got {drop_prob})")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0 (got {jitter})")
        self.seed = seed
        self.rng = random.Random(seed)
        self.drop_prob = drop_prob
        self.jitter = jitter
        self.partitions: list[PartitionWindow] = list(partitions)

    def add_partition(
        self, start: float, end: float, endpoints: tuple[str, ...] | None = None
    ) -> PartitionWindow:
        if end < start:
            raise ValueError(f"partition ends before it starts ({start} > {end})")
        window = PartitionWindow(
            start, end, frozenset(endpoints) if endpoints else None
        )
        self.partitions.append(window)
        return window

    def drop_reason(self, now: float, to: str) -> str | None:
        """Why this transmission is lost, or ``None`` when it survives."""
        for window in self.partitions:
            if window.covers(now, to):
                return "partition"
        if self.drop_prob and self.rng.random() < self.drop_prob:
            return "drop"
        return None

    def extra_delay(self) -> float:
        if self.jitter <= 0:
            return 0.0
        return self.rng.uniform(0.0, self.jitter)


@dataclass(frozen=True)
class RetryPolicy:
    """At-least-once parameters for ``reliable`` sends.

    The first retransmission fires ``timeout`` after the original send;
    each subsequent one backs off by ``backoff``x, up to ``max_retries``
    retransmissions before the channel gives up (journaled, counted --
    never silent).  ``timeout`` should comfortably exceed one RTT to the
    slowest endpoint or healthy messages will retransmit spuriously
    (dedup keeps that harmless, but it wastes simulated bandwidth).
    """

    timeout: float = 0.05
    backoff: float = 2.0
    max_retries: int = 8

    def delay(self, attempt: int) -> float:
        """Timeout after retransmission number ``attempt`` (0-based)."""
        return self.timeout * (self.backoff**attempt)


class ControlChannel:
    """A star-shaped control network between one controller and many peers.

    Peers register a handler by name; ``send`` delivers after ``latency``
    seconds.  Per-destination latency overrides model remote sites (e.g. a
    cloud controller far from a home gateway).
    """

    def __init__(
        self,
        sim: "Simulator",
        latency: float = 0.002,
        retry_policy: RetryPolicy | None = None,
        dedup_ttl: float = 60.0,
        dedup_max: int = 4096,
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        if dedup_ttl <= 0:
            raise ValueError(f"dedup_ttl must be positive (got {dedup_ttl})")
        if dedup_max <= 0:
            raise ValueError(f"dedup_max must be positive (got {dedup_max})")
        self.sim = sim
        self.latency = latency
        self.retry_policy = retry_policy or RetryPolicy()
        #: Dedup-table retention.  The TTL must comfortably exceed the
        #: worst-case retransmission span (default retry policy: ~25.6s of
        #: backoff) or a late retransmission of an evicted id would be
        #: delivered twice; the size cap bounds memory under bursts.
        self.dedup_ttl = dedup_ttl
        self.dedup_max = dedup_max
        self.fault_model: FaultModel | None = None
        self._handlers: dict[str, Callable[[ControlMessage], None]] = {}
        self._latency_override: dict[str, float] = {}
        self.sent = 0
        self.delivered = 0
        self.undeliverable = 0
        self.dropped = 0
        self.retries = 0
        self.giveups = 0
        self.duplicates = 0
        self.acked = 0
        self.dedup_evictions = 0
        #: receiver-side dedup: endpoint -> {msg_id: expiry}.  The TTL is
        #: constant, so insertion order *is* expiry order and eviction
        #: pops from the front of the (insertion-ordered) dict.
        self._seen: dict[str, dict[int, float]] = {}
        #: sender-side reliability state: msg_id -> pending retry timer
        self._inflight: dict[int, "Event"] = {}
        self._acked_ids: dict[int, float] = {}
        metrics = sim.metrics
        self.metric_labels = {"channel": metrics.unique("control")}
        metrics.gauge("channel_sent", fn=lambda: self.sent, **self.metric_labels)
        metrics.gauge(
            "channel_delivered", fn=lambda: self.delivered, **self.metric_labels
        )
        metrics.gauge(
            "channel_undeliverable",
            fn=lambda: self.undeliverable,
            **self.metric_labels,
        )
        self._c_dropped = metrics.counter("channel_dropped", **self.metric_labels)
        self._c_retries = metrics.counter("channel_retries", **self.metric_labels)
        self._c_giveups = metrics.counter("channel_giveups", **self.metric_labels)
        self._c_duplicates = metrics.counter(
            "channel_duplicates", **self.metric_labels
        )
        self._c_dedup_evictions = metrics.counter(
            "channel_dedup_evictions", **self.metric_labels
        )

    def _prune_dedup(self, table: dict[int, float], endpoint: str) -> None:
        """Evict expired/oversize dedup entries from the table's front.

        Entries are inserted with ``now + dedup_ttl`` and the TTL is
        constant, so the insertion-ordered dict is also expiry-ordered:
        eviction only ever needs to look at the oldest entry.  Evictions
        are journaled (batched per call) -- losing dedup state early is a
        correctness hazard worth an audit trail.
        """
        now = self.sim.now
        evicted = 0
        while table:
            msg_id = next(iter(table))
            if table[msg_id] <= now or len(table) > self.dedup_max:
                del table[msg_id]
                evicted += 1
            else:
                break
        if evicted:
            self.dedup_evictions += evicted
            self._c_dedup_evictions.inc(evicted)
            self.sim.journal.record(
                "ctrl-dedup-evict",
                endpoint=endpoint,
                evicted=evicted,
                retained=len(table),
            )

    def register(self, name: str, handler: Callable[[ControlMessage], None]) -> None:
        """Register (or replace) the message handler for endpoint ``name``."""
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def set_latency_to(self, name: str, latency: float) -> None:
        """Override the one-way latency for messages *to* ``name``."""
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self._latency_override[name] = latency

    def latency_to(self, name: str) -> float:
        return self._latency_override.get(name, self.latency)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def inject_faults(self, model: FaultModel | None) -> FaultModel | None:
        """Install (or clear, with ``None``) the channel's fault model."""
        self.fault_model = model
        return model

    def partition(
        self, start: float, end: float, endpoints: tuple[str, ...] | None = None
    ) -> PartitionWindow:
        """Schedule a partition window; creates a benign fault model if none."""
        if self.fault_model is None:
            self.fault_model = FaultModel()
        return self.fault_model.add_partition(start, end, endpoints)

    def reachable(self, to: str) -> bool:
        """Whether ``to`` is outside every current partition window.

        Partitions are declarative (keyed on simulated time), so a sender
        can consult this *before* transmitting -- the durable telemetry
        stream uses it to keep buffering through a multi-hour outage
        instead of burning events and journal space on doomed sends.
        Random per-transmission drops are not knowable in advance and are
        deliberately not reflected here.
        """
        model = self.fault_model
        if model is None:
            return True
        now = self.sim.now
        return not any(window.covers(now, to) for window in model.partitions)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        sender: str,
        to: str,
        kind: str,
        body: dict[str, Any] | None = None,
        reliable: bool = False,
    ) -> ControlMessage:
        """Send a control message; delivery is scheduled on the simulator.

        With ``reliable=True`` the message is retransmitted on ack timeout
        (exponential backoff, capped) and deduplicated at the receiver, so
        the handler observes it exactly once -- or a journaled give-up.
        """
        message = ControlMessage(
            kind=kind, sender=sender, body=dict(body or {}), sent_at=self.sim.now
        )
        self.sent += 1

        def deliver_to_handler() -> bool:
            handler = self._handlers.get(to)
            if handler is None:
                self.undeliverable += 1
                return False
            self.delivered += 1
            handler(message)
            return True

        self._transmit(message, to, deliver_to_handler, reliable, attempt=0)
        return message

    def call(
        self,
        sender: str,
        to: str,
        fn: Callable[[], None],
        kind: str = "rpc",
        reliable: bool = False,
    ) -> ControlMessage:
        """Deliver ``fn()`` at endpoint ``to`` over the channel (RPC-style).

        Used by the consistent updater for switch installs/flips: the
        payload is a closure rather than a registered handler, but the
        message still rides the wire -- fault model, retry, backoff and
        dedup all apply, and dedup guarantees ``fn`` executes at most once
        however many retransmissions the fault pattern forces.
        """
        message = ControlMessage(kind=kind, sender=sender, sent_at=self.sim.now)
        self.sent += 1

        def deliver_fn() -> bool:
            self.delivered += 1
            fn()
            return True

        self._transmit(message, to, deliver_fn, reliable, attempt=0)
        return message

    # ------------------------------------------------------------------
    # The wire
    # ------------------------------------------------------------------
    def _journal_device(self, message: ControlMessage) -> str:
        device = message.body.get("device", "")
        return device if isinstance(device, str) else ""

    def _transmit(
        self,
        message: ControlMessage,
        to: str,
        deliver: Callable[[], bool],
        reliable: bool,
        attempt: int,
    ) -> None:
        """One transmission attempt (original send or retransmission)."""
        now = self.sim.now
        reason = (
            self.fault_model.drop_reason(now, to) if self.fault_model else None
        )
        if reliable:
            self._arm_retry(message, to, deliver, attempt)
        if reason is not None:
            self.dropped += 1
            self._c_dropped.inc()
            self.sim.journal.record(
                "ctrl-drop",
                device=self._journal_device(message),
                trace=message.body.get("trace"),
                msg=message.msg_id,
                msg_kind=message.kind,
                to=to,
                reason=reason,
                attempt=attempt,
            )
            return  # lost on the wire; the retry timer (if any) is armed

        delay = self.latency_to(to)
        if self.fault_model is not None:
            delay += self.fault_model.extra_delay()

        if not reliable:
            # Fast path: no dedup, no ack -- deliver directly, without
            # building the reliable arrival closure (alerts and telemetry
            # ride here, at data-plane volume).
            self.sim.schedule(delay, deliver)
            return

        def arrive() -> None:
            seen = self._seen.setdefault(to, {})
            if message.msg_id in seen:
                # Retransmission of an already-delivered message: the
                # application layer must not see it twice.
                self.duplicates += 1
                self._c_duplicates.inc()
                self.sim.journal.record(
                    "ctrl-dup",
                    device=self._journal_device(message),
                    msg=message.msg_id,
                    msg_kind=message.kind,
                    to=to,
                )
                self._send_ack(message, to)
                return
            if deliver():
                seen[message.msg_id] = self.sim.now + self.dedup_ttl
                self._prune_dedup(seen, to)
                self._send_ack(message, to)
            # No handler: no ack -- the sender keeps retrying, which is
            # exactly right for a crashed-and-restarting controller.

        self.sim.schedule(delay, arrive)

    def _send_ack(self, message: ControlMessage, to: str) -> None:
        """The ack rides the return leg and is just as loseable."""
        now = self.sim.now
        reason = (
            self.fault_model.drop_reason(now, message.sender)
            if self.fault_model
            else None
        )
        if reason is not None:
            self.dropped += 1
            self._c_dropped.inc()
            self.sim.journal.record(
                "ctrl-drop",
                device=self._journal_device(message),
                msg=message.msg_id,
                msg_kind="ack",
                to=message.sender,
                reason=reason,
            )
            return
        delay = self.latency_to(message.sender)
        if self.fault_model is not None:
            delay += self.fault_model.extra_delay()

        def ack_arrives() -> None:
            if message.msg_id in self._acked_ids:
                return  # duplicate ack
            self.acked += 1
            self._acked_ids[message.msg_id] = self.sim.now + self.dedup_ttl
            self._prune_dedup(self._acked_ids, message.sender)
            timer = self._inflight.pop(message.msg_id, None)
            if timer is not None:
                timer.cancel()

        self.sim.schedule(delay, ack_arrives)

    def _arm_retry(
        self,
        message: ControlMessage,
        to: str,
        deliver: Callable[[], bool],
        attempt: int,
    ) -> None:
        """Schedule the retransmission that fires unless the ack beats it."""
        old = self._inflight.pop(message.msg_id, None)
        if old is not None:
            old.cancel()

        def on_timeout() -> None:
            self._inflight.pop(message.msg_id, None)
            if message.msg_id in self._acked_ids:
                return
            if attempt >= self.retry_policy.max_retries:
                self.giveups += 1
                self._c_giveups.inc()
                self.sim.journal.record(
                    "ctrl-giveup",
                    device=self._journal_device(message),
                    trace=message.body.get("trace"),
                    msg=message.msg_id,
                    msg_kind=message.kind,
                    to=to,
                    retries=attempt,
                )
                return
            self.retries += 1
            self._c_retries.inc()
            self.sim.journal.record(
                "ctrl-retry",
                device=self._journal_device(message),
                trace=message.body.get("trace"),
                msg=message.msg_id,
                msg_kind=message.kind,
                to=to,
                attempt=attempt + 1,
            )
            self._transmit(message, to, deliver, reliable=True, attempt=attempt + 1)

        self._inflight[message.msg_id] = self.sim.schedule(
            self.retry_policy.delay(attempt), on_timeout
        )

    # ------------------------------------------------------------------
    def broadcast(
        self,
        sender: str,
        kind: str,
        body: dict[str, Any] | None = None,
        exclude: set[str] | None = None,
        reliable: bool = False,
    ) -> int:
        """Send to every registered endpoint except ``sender``/``exclude``."""
        skip = {sender} | (exclude or set())
        targets = [name for name in self._handlers if name not in skip]
        for name in targets:
            self.send(sender, name, kind, body, reliable=reliable)
        return len(targets)
