"""The controller <-> switch control channel.

Control messages (packet-in, flow-mod, posture updates, context events)
travel over this channel with a configurable one-way latency, so control-
plane responsiveness is measurable in simulated time -- the core question of
the paper's section 5.1.

The channel is deliberately message-type agnostic: it delivers
:class:`ControlMessage` envelopes and lets endpoints dispatch on ``kind``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator

_MSG_IDS = itertools.count(1)


@dataclass
class ControlMessage:
    """An envelope on the control channel."""

    kind: str
    sender: str
    body: dict[str, Any] = field(default_factory=dict)
    sent_at: float = 0.0
    msg_id: int = field(default_factory=lambda: next(_MSG_IDS))


class ControlChannel:
    """A star-shaped control network between one controller and many peers.

    Peers register a handler by name; ``send`` delivers after ``latency``
    seconds.  Per-destination latency overrides model remote sites (e.g. a
    cloud controller far from a home gateway).
    """

    def __init__(self, sim: "Simulator", latency: float = 0.002) -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.sim = sim
        self.latency = latency
        self._handlers: dict[str, Callable[[ControlMessage], None]] = {}
        self._latency_override: dict[str, float] = {}
        self.sent = 0
        self.delivered = 0
        self.undeliverable = 0

    def register(self, name: str, handler: Callable[[ControlMessage], None]) -> None:
        """Register (or replace) the message handler for endpoint ``name``."""
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def set_latency_to(self, name: str, latency: float) -> None:
        """Override the one-way latency for messages *to* ``name``."""
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self._latency_override[name] = latency

    def latency_to(self, name: str) -> float:
        return self._latency_override.get(name, self.latency)

    def send(
        self,
        sender: str,
        to: str,
        kind: str,
        body: dict[str, Any] | None = None,
    ) -> ControlMessage:
        """Send a control message; delivery is scheduled on the simulator."""
        message = ControlMessage(
            kind=kind, sender=sender, body=dict(body or {}), sent_at=self.sim.now
        )
        self.sent += 1

        def deliver() -> None:
            handler = self._handlers.get(to)
            if handler is None:
                self.undeliverable += 1
                return
            self.delivered += 1
            handler(message)

        self.sim.schedule(self.latency_to(to), deliver)
        return message

    def broadcast(
        self,
        sender: str,
        kind: str,
        body: dict[str, Any] | None = None,
        exclude: set[str] | None = None,
    ) -> int:
        """Send to every registered endpoint except ``sender``/``exclude``."""
        skip = {sender} | (exclude or set())
        targets = [name for name in self._handlers if name not in skip]
        for name in targets:
            self.send(sender, name, kind, body)
        return len(targets)
