"""OpenFlow-style Match -> Action flow rules.

This is also the paper's first strawman policy abstraction (section 3.1):
"a set of Match -> Action pairs, where the Match predicate is typically
specified in terms of packet headers".  The FSM policy abstraction of
section 3.2 ultimately *compiles down* to these rules plus µmbox postures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.netsim.packet import Packet

_RULE_IDS = itertools.count(1)


@dataclass(frozen=True, slots=True)
class FlowMatch:
    """A header-level match predicate.  ``None`` fields are wildcards."""

    src: Optional[str] = None
    dst: Optional[str] = None
    protocol: Optional[str] = None
    sport: Optional[int] = None
    dport: Optional[int] = None
    in_port: Optional[int] = None

    def matches(self, packet: Packet, in_port: int | None = None) -> bool:
        """True when every non-wildcard field equals the packet's field."""
        if self.src is not None and packet.src != self.src:
            return False
        if self.dst is not None and packet.dst != self.dst:
            return False
        if self.protocol is not None and packet.protocol != self.protocol:
            return False
        if self.sport is not None and packet.sport != self.sport:
            return False
        if self.dport is not None and packet.dport != self.dport:
            return False
        if self.in_port is not None and in_port != self.in_port:
            return False
        return True

    def specificity(self) -> int:
        """Number of concrete (non-wildcard) fields; used for tie-breaking."""
        return sum(
            value is not None
            for value in (
                self.src,
                self.dst,
                self.protocol,
                self.sport,
                self.dport,
                self.in_port,
            )
        )

    def overlaps(self, other: "FlowMatch") -> bool:
        """True when some packet could match both predicates.

        Two matches overlap unless a shared concrete field disagrees.  Used
        by the policy conflict checker (section 3.1's "recipes ... can lead
        to conflicts").
        """
        for attr in ("src", "dst", "protocol", "sport", "dport", "in_port"):
            mine = getattr(self, attr)
            theirs = getattr(other, attr)
            if mine is not None and theirs is not None and mine != theirs:
                return False
        return True

    def subsumes(self, other: "FlowMatch") -> bool:
        """True when every packet matching ``other`` also matches ``self``."""
        for attr in ("src", "dst", "protocol", "sport", "dport", "in_port"):
            mine = getattr(self, attr)
            theirs = getattr(other, attr)
            if mine is not None and mine != theirs:
                return False
        return True


@dataclass(frozen=True, slots=True)
class Action:
    """A forwarding action.

    ``kind`` is one of:

    - ``"forward"`` -- output on ``port``.
    - ``"drop"`` -- discard.
    - ``"controller"`` -- punt to the controller (packet-in).
    - ``"tunnel"`` -- encapsulate toward the µmbox bound to ``target`` and
      output on ``port`` (the port facing the security cluster).  ``via``
      optionally names the cluster host: multi-switch topologies address
      the outer packet to it so intermediate switches can route the tunnel.
    """

    kind: str
    port: Optional[int] = None
    target: Optional[str] = None
    via: Optional[str] = None

    KINDS = ("forward", "drop", "controller", "tunnel")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown action kind {self.kind!r}")
        if self.kind in ("forward", "tunnel") and self.port is None:
            raise ValueError(f"{self.kind} action requires a port")
        if self.kind == "tunnel" and self.target is None:
            raise ValueError("tunnel action requires a target µmbox name")

    @classmethod
    def forward(cls, port: int) -> "Action":
        return cls("forward", port=port)

    @classmethod
    def drop(cls) -> "Action":
        return cls("drop")

    @classmethod
    def controller(cls) -> "Action":
        return cls("controller")

    @classmethod
    def tunnel(cls, target: str, port: int, via: str | None = None) -> "Action":
        return cls("tunnel", port=port, target=target, via=via)


@dataclass
class FlowRule:
    """A prioritized Match -> Action rule with counters.

    ``version`` tags the configuration epoch that installed the rule; the
    two-phase consistent updater (:mod:`repro.sdn.consistency`) uses it to
    flip whole rule sets atomically.  ``None`` means version-independent.
    """

    match: FlowMatch
    actions: tuple[Action, ...]
    priority: int = 100
    version: Optional[int] = None
    rule_id: int = field(default_factory=lambda: next(_RULE_IDS))
    hits: int = 0
    hit_bytes: int = 0

    def __post_init__(self) -> None:
        self.actions = tuple(self.actions)
        if not self.actions:
            raise ValueError("a flow rule needs at least one action")
        # priority/match/rule_id never change after construction, and table
        # re-sorts on every epoch push made recomputing this a hotspot
        self._sort_key = (-self.priority, -self.match.specificity(), self.rule_id)

    def record_hit(self, packet: Packet) -> None:
        self.hits += 1
        self.hit_bytes += packet.size

    def sort_key(self) -> tuple[int, int, int]:
        """Higher priority first, then more specific, then older."""
        return self._sort_key
