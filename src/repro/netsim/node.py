"""Network nodes.

A :class:`Node` owns a set of numbered ports, each optionally attached to a
:class:`~repro.netsim.link.Link`.  Subclasses (IoT devices, switches,
µmboxes, attacker hosts) override :meth:`on_packet`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.link import Link
    from repro.netsim.simulator import Simulator


class Node:
    """Base class for anything attached to the simulated network.

    Slotted: the per-packet counters and the port map are the hottest
    attributes in the forwarding path.  Subclasses may still declare
    ad-hoc attributes (they get a ``__dict__`` unless they opt into
    ``__slots__`` themselves).
    """

    __slots__ = ("name", "sim", "ports", "rx_count", "tx_count", "rx_bytes", "tx_bytes")

    def __init__(self, name: str, sim: "Simulator") -> None:
        self.name = name
        self.sim = sim
        self.ports: dict[int, "Link"] = {}
        self.rx_count = 0
        self.tx_count = 0
        self.rx_bytes = 0
        self.tx_bytes = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, port: int, link: "Link") -> None:
        """Attach ``link`` to ``port``.  A port holds at most one link."""
        if port in self.ports:
            raise ValueError(f"{self.name}: port {port} already attached")
        self.ports[port] = link

    def free_port(self) -> int:
        """The lowest unattached port number."""
        port = 0
        while port in self.ports:
            port += 1
        return port

    def port_to(self, neighbor: str) -> Optional[int]:
        """The port whose link leads to ``neighbor``, if any."""
        for port, link in self.ports.items():
            if link.other_end(self).name == neighbor:
                return port
        return None

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def send(self, packet: Packet, port: int | None = None) -> bool:
        """Transmit ``packet`` out of ``port`` (default: the only port).

        Returns False when the node has no usable port, which models an
        unplugged device rather than raising: callers in traffic generators
        should tolerate partial topologies.
        """
        ports = self.ports
        if port is None:
            if not ports:
                return False  # an unplugged node: traffic goes nowhere
            if len(ports) > 1:
                raise ValueError(
                    f"{self.name}: port must be given explicitly "
                    f"({len(ports)} ports attached)"
                )
            port = next(iter(ports))
        link = ports.get(port)
        if link is None:
            return False
        if not packet.created_at:
            packet.created_at = self.sim.now
        packet.trace.append(self.name)
        self.tx_count += 1
        self.tx_bytes += packet.size
        link.transmit(self, packet)
        return True

    def receive(self, packet: Packet, in_port: int) -> None:
        """Entry point called by the link when a packet arrives."""
        self.rx_count += 1
        self.rx_bytes += packet.size
        self.on_packet(packet, in_port)

    def on_packet(self, packet: Packet, in_port: int) -> None:
        """Handle a delivered packet.  Default: drop silently (a sink)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Host(Node):
    """A general-purpose endpoint that records everything it receives.

    Used for attacker machines, cloud endpoints, and test probes.  An
    optional ``responder`` callable lets tests script replies.
    """

    def __init__(self, name: str, sim: "Simulator") -> None:
        super().__init__(name, sim)
        self.inbox: list[Packet] = []
        self.responder = None  # type: ignore[assignment]

    def on_packet(self, packet: Packet, in_port: int) -> None:
        self.inbox.append(packet)
        if self.responder is not None:
            reply = self.responder(packet)
            if reply is not None:
                self.send(reply, in_port)

    def received(self, **payload_filter: object) -> list[Packet]:
        """Packets whose payload contains all the given key/value pairs."""
        return [
            pkt
            for pkt in self.inbox
            if all(pkt.payload.get(k) == v for k, v in payload_filter.items())
        ]
