"""Topology construction helpers.

The deployments the paper targets (section 2.2) are residential and
commercial: devices hang off one or a few edge switches/APs, which uplink to
an on-premise security cluster (enterprise) or an upgraded IoT router
(home), and out to the Internet.  :meth:`Topology.smart_home` builds exactly
that shape.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.netsim.link import Link
from repro.netsim.node import Host, Node
from repro.netsim.simulator import Simulator
from repro.netsim.switch import Switch


class Topology:
    """A named collection of nodes and links over one simulator."""

    def __init__(self, sim: Simulator | None = None) -> None:
        self.sim = sim or Simulator()
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        self._route_cache: dict[tuple[str, str], int | None] = {}
        self._route_fingerprint: tuple = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, node: Node) -> Node:
        """Register a node (its name must be unique in the topology)."""
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def add_switch(self, name: str) -> Switch:
        switch = Switch(name, self.sim)
        self.add(switch)
        return switch

    def add_host(self, name: str) -> Host:
        host = Host(name, self.sim)
        self.add(host)
        return host

    def connect(
        self,
        a: str | Node,
        b: str | Node,
        latency: float = 0.001,
        bandwidth: float | None = None,
    ) -> Link:
        """Link two nodes (by name or reference)."""
        node_a = self._resolve(a)
        node_b = self._resolve(b)
        link = Link(self.sim, node_a, node_b, latency=latency, bandwidth=bandwidth)
        self.links.append(link)
        return link

    def _resolve(self, ref: str | Node) -> Node:
        if isinstance(ref, Node):
            return ref
        node = self.nodes.get(ref)
        if node is None:
            raise KeyError(f"no node named {ref!r}")
        return node

    def __getitem__(self, name: str) -> Node:
        return self._resolve(name)

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    # ------------------------------------------------------------------
    # Canned shapes
    # ------------------------------------------------------------------
    @classmethod
    def smart_home(
        cls,
        device_names: Iterable[str] = (),
        sim: Simulator | None = None,
        edge_name: str = "edge",
        cluster_name: str = "cluster",
        internet_name: str = "internet",
        device_latency: float = 0.002,
        uplink_latency: float = 0.010,
        cluster_latency: float = 0.001,
    ) -> "Topology":
        """Edge switch + device ports + cluster host + internet host.

        The devices themselves are plain :class:`Host` placeholders; the
        devices package replaces them with real device models via
        :meth:`replace_node`.
        """
        topo = cls(sim)
        edge = topo.add_switch(edge_name)
        cluster = topo.add_host(cluster_name)
        internet = topo.add_host(internet_name)
        topo.connect(edge, cluster, latency=cluster_latency)
        topo.connect(edge, internet, latency=uplink_latency)
        for name in device_names:
            device = topo.add_host(name)
            topo.connect(edge, device, latency=device_latency)
        return topo

    def replace_node(self, name: str, replacement: Node) -> Node:
        """Swap a placeholder for a richer node, preserving its links."""
        old = self._resolve(name)
        if replacement.name != name:
            raise ValueError(
                f"replacement must keep the name {name!r} "
                f"(got {replacement.name!r})"
            )
        for port, link in old.ports.items():
            replacement.attach(port, link)
            if link.a is old:
                link.a = replacement
            else:
                link.b = replacement
        self.nodes[name] = replacement
        return replacement

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def graph(self) -> nx.Graph:
        """The topology as a networkx graph (edges carry the Link object)."""
        g = nx.Graph()
        g.add_nodes_from(self.nodes)
        for link in self.links:
            if link.up:
                g.add_edge(link.a.name, link.b.name, link=link, weight=link.latency)
        return g

    def _fingerprint(self) -> tuple:
        """A cheap digest of routing-relevant state; when it changes,
        cached routes are stale.  O(1): link up/down flips bump the global
        ``Link.state_version`` counter, so no per-link scan is needed on
        the per-packet lookup path."""
        return (len(self.nodes), len(self.links), Link.state_version)

    def next_hop_port(self, at: str, toward: str) -> int | None:
        """The output port at node ``at`` on a shortest path to ``toward``.

        Cached: reactive forwarding calls this per packet, and rebuilding
        the graph each time dominated simulation cost at scale.  The cache
        invalidates whenever nodes/links are added or links change state.
        """
        if at == toward:
            return None
        fingerprint = self._fingerprint()
        if fingerprint != self._route_fingerprint:
            self._route_cache.clear()
            self._route_fingerprint = fingerprint
        key = (at, toward)
        if key in self._route_cache:
            return self._route_cache[key]
        g = self.graph()
        try:
            path = nx.shortest_path(g, at, toward, weight="weight")
            port = self._resolve(at).port_to(path[1])
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            port = None
        self._route_cache[key] = port
        return port

    def switches(self) -> list[Switch]:
        return [n for n in self.nodes.values() if isinstance(n, Switch)]

    def run(self, until: float | None = None) -> None:
        """Convenience passthrough to the simulator."""
        self.sim.run(until=until)
