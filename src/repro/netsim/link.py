"""Point-to-point links with latency, serialization delay, and queueing.

A link connects exactly two nodes.  Delivery time is
``latency + size / bandwidth`` (bandwidth in bytes/second; ``None`` means
infinite capacity, which most IoT control-traffic experiments use since they
are latency- not bandwidth-bound).

Bandwidth-limited links serialize: concurrent transmissions in the same
direction queue behind each other (per-direction FIFO), and a drop-tail
bound (``max_queue_delay``) discards packets that would wait longer --
which is what makes volumetric attacks (DNS reflection) physically
meaningful: they do not just add bytes, they crowd benign traffic off the
wire.  Links can be administratively downed to model failures.

Hot-path notes: the class is slotted, ``transmit``/``_deliver`` read the
``_up`` flag directly (the ``up`` property stays for the admin surface),
and the per-direction busy horizon lives in two plain floats instead of a
dict keyed by direction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.node import Node
    from repro.netsim.simulator import Simulator


class Link:
    """A bidirectional point-to-point link."""

    __slots__ = (
        "sim",
        "a",
        "b",
        "latency",
        "bandwidth",
        "max_queue_delay",
        "_up",
        "delivered",
        "dropped",
        "queue_drops",
        "_busy_until_ab",
        "_busy_until_ba",
        "port_a",
        "port_b",
        "metric_labels",
    )

    #: Bumped whenever any link changes up/down state.  Routing caches use
    #: it (together with node/link counts) as an O(1) staleness check
    #: instead of scanning every link's status per lookup.
    state_version: int = 0

    def __init__(
        self,
        sim: "Simulator",
        a: "Node",
        b: "Node",
        latency: float = 0.001,
        bandwidth: float | None = None,
        port_a: int | None = None,
        port_b: int | None = None,
        max_queue_delay: float = 0.5,
    ) -> None:
        if latency < 0:
            raise ValueError(f"latency must be >= 0 (got {latency})")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive (got {bandwidth})")
        if max_queue_delay < 0:
            raise ValueError("max_queue_delay must be >= 0")
        self.sim = sim
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth = bandwidth
        self.max_queue_delay = max_queue_delay
        self._up = True
        self.delivered = 0
        self.dropped = 0
        self.queue_drops = 0
        self._busy_until_ab = 0.0  # a -> b serialization horizon
        self._busy_until_ba = 0.0  # b -> a serialization horizon
        self.port_a = port_a if port_a is not None else a.free_port()
        self.port_b = port_b if port_b is not None else b.free_port()
        a.attach(self.port_a, self)
        b.attach(self.port_b, self)
        # Observability: per-link delivery/drop gauges (callbacks -- the
        # transmit path keeps incrementing its plain attributes).
        metrics = sim.metrics
        self.metric_labels = {
            "link": metrics.unique(f"{a.name}:{self.port_a}<->{b.name}:{self.port_b}")
        }
        metrics.gauge("link_delivered", fn=lambda: self.delivered, **self.metric_labels)
        metrics.gauge("link_dropped", fn=lambda: self.dropped, **self.metric_labels)
        metrics.gauge("link_queue_drops", fn=lambda: self.queue_drops, **self.metric_labels)

    @property
    def up(self) -> bool:
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        if value != self._up:
            self._up = value
            Link.state_version += 1

    def other_end(self, node: "Node") -> "Node":
        """The node at the far side from ``node``."""
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node!r} is not attached to this link")

    def _ingress_port(self, receiver: "Node") -> int:
        return self.port_a if receiver is self.a else self.port_b

    def transmit(self, sender: "Node", packet: Packet) -> None:
        """Schedule delivery of ``packet`` to the far end.

        On bandwidth-limited links, transmissions in the same direction
        serialize FIFO; a packet that would queue longer than
        ``max_queue_delay`` is drop-tailed.
        """
        if not self._up:
            self.dropped += 1
            return
        from_a = sender is self.a
        delay = self.latency
        if self.bandwidth is not None:
            now = self.sim.now
            start = self._busy_until_ab if from_a else self._busy_until_ba
            if start < now:
                start = now
            if start - now > self.max_queue_delay:
                self.queue_drops += 1
                self.dropped += 1
                return
            done = start + packet.size / self.bandwidth
            if from_a:
                self._busy_until_ab = done
            else:
                self._busy_until_ba = done
            delay = (done - now) + self.latency
        if from_a:
            self.sim.schedule(delay, self._deliver, self.b, packet, self.port_b)
        else:
            self.sim.schedule(delay, self._deliver, self.a, packet, self.port_a)

    def _deliver(self, receiver: "Node", packet: Packet, in_port: int) -> None:
        if not self._up:
            self.dropped += 1
            return
        self.delivered += 1
        receiver.receive(packet, in_port)

    def fail(self) -> None:
        """Administratively down the link; in-flight packets are dropped."""
        self.up = False

    def restore(self) -> None:
        """Bring the link back up."""
        self.up = True

    def __repr__(self) -> str:
        state = "up" if self._up else "DOWN"
        return f"Link({self.a.name}<->{self.b.name}, {self.latency * 1e3:.2f}ms, {state})"
