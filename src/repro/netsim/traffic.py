"""Traffic and workload generation.

Benign IoT traffic is periodic and low-rate (telemetry, keep-alives, app
commands); attack traffic is bursty (brute force, DDoS fan-out).  These
generators produce both, deterministically from a seeded
:class:`random.Random`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.node import Node
    from repro.netsim.simulator import Simulator


@dataclass
class TrafficStats:
    """Aggregate accounting for one generator."""

    packets: int = 0
    bytes: int = 0
    first_at: float | None = None
    last_at: float | None = None

    def record(self, packet: Packet, now: float) -> None:
        self.packets += 1
        self.bytes += packet.size
        if self.first_at is None:
            self.first_at = now
        self.last_at = now


class PeriodicSender:
    """Sends a templated packet from a node every ``period`` seconds.

    ``jitter`` (fraction of period) desynchronizes multiple senders, drawn
    from the supplied RNG so runs stay reproducible.
    """

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        make_packet: Callable[[], Packet],
        period: float,
        jitter: float = 0.0,
        rng: random.Random | None = None,
        port: int | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.sim = sim
        self.node = node
        self.make_packet = make_packet
        self.period = period
        self.jitter = jitter
        self.rng = rng or random.Random(0)
        self.port = port
        self.stats = TrafficStats()
        self._stopped = False

    def start(self, initial_delay: float | None = None) -> "PeriodicSender":
        delay = initial_delay
        if delay is None:
            delay = self.rng.uniform(0, self.period)
        self.sim.schedule(delay, self._fire)
        return self

    def stop(self) -> None:
        self._stopped = True

    def _fire(self) -> None:
        if self._stopped:
            return
        packet = self.make_packet()
        self.node.send(packet, self.port)
        self.stats.record(packet, self.sim.now)
        gap = self.period
        if self.jitter:
            gap *= 1.0 + self.rng.uniform(-self.jitter, self.jitter)
        self.sim.schedule(gap, self._fire)


class BurstSender:
    """Sends ``count`` packets back-to-back at ``rate`` packets/second.

    Models brute-force login storms and DDoS fan-out bursts.
    """

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        make_packet: Callable[[int], Packet],
        count: int,
        rate: float,
        port: int | None = None,
    ) -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.node = node
        self.make_packet = make_packet
        self.count = count
        self.rate = rate
        self.port = port
        self.stats = TrafficStats()

    def start(self, initial_delay: float = 0.0) -> "BurstSender":
        gap = 1.0 / self.rate
        for i in range(self.count):
            self.sim.schedule(initial_delay + i * gap, self._fire, i)
        return self

    def _fire(self, index: int) -> None:
        packet = self.make_packet(index)
        self.node.send(packet, self.port)
        self.stats.record(packet, self.sim.now)


@dataclass
class TraceEntry:
    """One labelled packet of a workload trace (ground truth for E8)."""

    at: float
    packet: Packet
    label: str = "benign"
    meta: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects labelled packets as they are injected, for scoring later."""

    def __init__(self) -> None:
        self.entries: list[TraceEntry] = []

    def record(self, at: float, packet: Packet, label: str = "benign") -> TraceEntry:
        entry = TraceEntry(at=at, packet=packet, label=label)
        self.entries.append(entry)
        return entry

    def labelled(self, label: str) -> list[TraceEntry]:
        return [e for e in self.entries if e.label == label]

    def __len__(self) -> int:
        return len(self.entries)
