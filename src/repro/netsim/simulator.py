"""Discrete-event simulation engine.

All IoTSec components share one :class:`Simulator` instance.  Time is a
float in seconds and only advances when events fire; nothing in the library
reads the wall clock, which keeps every experiment deterministic and fast.

Events scheduled for the same instant fire in the order they were scheduled
(FIFO tie-breaking via a monotonically increasing sequence number), which
makes runs reproducible regardless of heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.obs import Journal, MetricsRegistry, Tracer


@dataclass
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)`` so that simultaneous events preserve
    scheduling order.  The heap stores ``(time, seq, event)`` tuples so
    ordering uses fast tuple comparison; the event object itself never
    needs to be compared.
    """

    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time arrives."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event scheduler.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(1.5, fired.append, "hello")  # doctest: +ELLIPSIS
    Event(...)
    >>> sim.run()
    >>> fired, sim.now
    (['hello'], 1.5)
    """

    def __init__(self, observe: bool = True) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._executing = False
        #: Shared observability: every component of an experiment registers
        #: its instruments here (``observe=False`` swaps in no-op
        #: instruments, which is what the overhead bench compares against).
        self.metrics = MetricsRegistry(enabled=observe)
        self.tracer = Tracer(enabled=observe)
        #: The flight recorder (see :mod:`repro.obs.journal`): every layer
        #: appends structured audit entries through ``journal.record``.
        self.journal = Journal(clock=lambda: self.now, enabled=observe)
        self.metrics.gauge("sim_now", fn=lambda: self.now)
        self.metrics.gauge("sim_events_processed", fn=lambda: self._events_processed)
        self.metrics.gauge("sim_events_pending", fn=self.events_pending)
        self.metrics.gauge("journal_recorded", fn=lambda: self.journal.recorded)
        self.metrics.gauge("journal_retained", fn=lambda: len(self.journal))
        self.metrics.gauge("journal_evicted", fn=lambda: self.journal.evicted)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Negative delays are rejected: the simulator never travels backwards.
        Returns the :class:`Event`, which the caller may later ``cancel()``.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(self.now + delay, next(self._seq), fn, args)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``.

        Times computed from accumulated float periods can land an ulp or two
        before ``now`` (e.g. ``10 * 0.1 < 1.0``); such infinitesimally
        negative deltas are clamped to "this instant" rather than rejected.
        Genuinely past times still raise.
        """
        delay = when - self.now
        if delay < 0 and -delay <= 1e-9 * max(1.0, abs(self.now)):
            delay = 0.0
        return self.schedule(delay, fn, *args)

    def call_now(self, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` for the current instant (after the caller)."""
        return self.schedule(0.0, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        while self._heap:
            __, __, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._executing = True
            try:
                event.fn(*event.args)
            finally:
                self._executing = False
            self._events_processed += 1
            return True
        return False

    @property
    def executing(self) -> bool:
        """True while an event callback is running.

        Components that coalesce work into same-instant batches use this to
        decide between scheduling a zero-delay flush (inside the event loop,
        where later same-time events may still add to the batch) and
        flushing synchronously (direct calls from test or admin code).
        """
        return self._executing

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` passes, or the budget.

        ``until`` is an absolute simulated time; events scheduled exactly at
        ``until`` still fire, and ``now`` always advances to ``until`` when
        one is given (even on an empty queue) so back-to-back
        ``run(until=...)`` calls carve out uniform windows regardless of
        event density.  ``max_events`` guards against runaway loops; when
        the budget stops the run early, ``now`` stays at the last fired
        event (the window was not fully simulated).
        """
        executed = 0
        while True:
            # Drain cancelled entries at the head so they neither linger in
            # the heap after an early return nor mask the true next time.
            while self._heap and self._heap[0][2].cancelled:
                heapq.heappop(self._heap)
            if not self._heap:
                break
            if until is not None and self._heap[0][0] > until:
                break
            if max_events is not None and executed >= max_events:
                return
            if self.step():
                executed += 1
        if until is not None and until > self.now:
            self.now = until

    def events_pending(self) -> int:
        """Number of scheduled (non-cancelled) events still in the queue."""
        return sum(1 for __, __, event in self._heap if not event.cancelled)

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Periodic helpers
    # ------------------------------------------------------------------
    def every(
        self,
        period: float,
        fn: Callable[..., None],
        *args: Any,
        until: float | None = None,
    ) -> Callable[[], None]:
        """Run ``fn(*args)`` every ``period`` seconds, starting one period out.

        Returns a zero-argument callable that stops the recurrence.
        """
        if period <= 0:
            raise ValueError(f"period must be positive (got {period})")
        stopped = False
        # Only the live (next) event is kept: long-running periodic tasks
        # (health checks, telemetry) must not accumulate one dead Event per
        # fired tick.
        live: list[Event | None] = [None]

        def tick() -> None:
            if stopped:
                return
            fn(*args)
            if until is None or self.now + period <= until:
                live[0] = self.schedule(period, tick)
            else:
                live[0] = None

        def stop() -> None:
            nonlocal stopped
            stopped = True
            if live[0] is not None:
                live[0].cancel()
                live[0] = None

        live[0] = self.schedule(period, tick)
        return stop

    def timeline(self) -> Iterator[float]:
        """Yield the (sorted) times of currently pending events (debugging)."""
        return iter(sorted(e.time for __, __, e in self._heap if not e.cancelled))

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.6f}, pending={self.events_pending()}, "
            f"processed={self._events_processed})"
        )
