"""Discrete-event simulation engine.

All IoTSec components share one :class:`Simulator` instance.  Time is a
float in seconds and only advances when events fire; nothing in the library
reads the wall clock, which keeps every experiment deterministic and fast.

Events scheduled for the same instant fire in the order they were scheduled
(FIFO tie-breaking via a monotonically increasing sequence number), which
makes runs reproducible regardless of heap internals.

Hot-path notes (see docs/architecture.md, "Performance architecture"):

- :class:`Event` is a ``__slots__`` class and fired events are recycled
  through a free list, so steady-state simulation allocates no event
  objects at all.  The recycling contract: **an Event reference is dead
  once the event has fired (or been popped as cancelled)** — holders must
  drop their reference no later than the callback itself (every internal
  user clears its stored event as the first action when it fires).
  Calling ``cancel()`` through a stale reference would cancel whatever
  unrelated event has since been allotted the recycled object.
- :meth:`run` inlines the pop/skip/fire loop rather than calling
  :meth:`step` per event; both share the same observable semantics.
- :meth:`every` uses a preallocated :class:`_Periodic` dispatch object
  instead of a pair of closures, so each tick re-arms itself without
  rebuilding cells.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, Iterator

from repro.obs import Journal, MetricsRegistry, Tracer

#: Upper bound on the event free list.  The pool only needs to cover the
#: peak number of in-flight events; anything beyond that is kept out of
#: the heap anyway, so a modest cap bounds memory without hurting reuse.
_POOL_MAX = 4096
#: Sentinel horizon for ``run(until=None)``: every event time compares below.
_INF = float("inf")


class Event:
    """A scheduled callback.

    The heap stores ``(time, seq, event)`` tuples so ordering uses fast
    tuple comparison; the event object itself is never compared.  Slotted
    and pooled: see the module docstring for the recycling contract.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time arrives."""
        self.cancelled = True

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, seq={self.seq!r}, "
            f"cancelled={self.cancelled!r})"
        )


class _Periodic:
    """Precomputed dispatch object behind :meth:`Simulator.every`.

    One instance per recurrence; the simulator schedules the instance
    itself as the event callback, so each tick is a plain ``__call__``
    with no closure-cell traffic.  Only the live (next) event is kept:
    long-running periodic tasks (health checks, telemetry) must not
    accumulate one dead Event per fired tick.
    """

    __slots__ = ("sim", "period", "fn", "args", "until", "stopped", "event")

    def __init__(
        self,
        sim: "Simulator",
        period: float,
        fn: Callable[..., None],
        args: tuple,
        until: float | None,
    ) -> None:
        self.sim = sim
        self.period = period
        self.fn = fn
        self.args = args
        self.until = until
        self.stopped = False
        self.event: Event | None = sim.schedule(period, self)

    def __call__(self) -> None:
        if self.stopped:
            return
        self.fn(*self.args)
        sim = self.sim
        if self.until is None or sim.now + self.period <= self.until:
            self.event = sim.schedule(self.period, self)
        else:
            self.event = None

    def stop(self) -> None:
        self.stopped = True
        event = self.event
        if event is not None:
            event.cancelled = True
            self.event = None


class Simulator:
    """A deterministic discrete-event scheduler.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(1.5, fired.append, "hello")  # doctest: +ELLIPSIS
    Event(...)
    >>> sim.run()
    >>> fired, sim.now
    (['hello'], 1.5)
    """

    def __init__(self, observe: bool = True) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._free: list[Event] = []
        self._events_processed = 0
        self._executing = False
        #: Shared observability: every component of an experiment registers
        #: its instruments here (``observe=False`` swaps in no-op
        #: instruments, which is what the overhead bench compares against).
        self.metrics = MetricsRegistry(enabled=observe)
        self.tracer = Tracer(enabled=observe)
        #: The flight recorder (see :mod:`repro.obs.journal`): every layer
        #: appends structured audit entries through ``journal.record``.
        self.journal = Journal(clock=lambda: self.now, enabled=observe)
        self.metrics.gauge("sim_now", fn=lambda: self.now)
        self.metrics.gauge("sim_events_processed", fn=lambda: self._events_processed)
        self.metrics.gauge("sim_events_pending", fn=self.events_pending)
        self.metrics.gauge("journal_recorded", fn=lambda: self.journal.recorded)
        self.metrics.gauge("journal_retained", fn=lambda: len(self.journal))
        self.metrics.gauge("journal_evicted", fn=lambda: self.journal.evicted)
        self.metrics.gauge("journal_spilled", fn=lambda: self.journal.spilled)
        self.metrics.gauge(
            "journal_spill_rotations", fn=lambda: self.journal.spill_rotations
        )
        self.metrics.gauge(
            "journal_spill_dropped_files", fn=lambda: self.journal.spill_dropped_files
        )
        self.metrics.gauge(
            "journal_spill_dropped_bytes", fn=lambda: self.journal.spill_dropped_bytes
        )
        self.metrics.gauge(
            "journal_spill_errors", fn=lambda: self.journal.spill_errors
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Negative delays are rejected: the simulator never travels backwards.
        Returns the :class:`Event`, which the caller may later ``cancel()``
        (only while it has not yet fired — see the recycling contract).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        seq = next(self._seq)
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, seq, fn, args)
        heappush(self._heap, (time, seq, event))
        return event

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``.

        Times computed from accumulated float periods can land an ulp or two
        before ``now`` (e.g. ``10 * 0.1 < 1.0``); such infinitesimally
        negative deltas are clamped to "this instant" rather than rejected.
        Genuinely past times still raise.
        """
        delay = when - self.now
        if delay < 0 and -delay <= 1e-9 * max(1.0, abs(self.now)):
            delay = 0.0
        return self.schedule(delay, fn, *args)

    def call_now(self, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` for the current instant (after the caller)."""
        return self.schedule(0.0, fn, *args)

    def _recycle(self, event: Event) -> None:
        """Return a dead event to the free list (drop refs it pinned)."""
        event.fn = None  # type: ignore[assignment]
        event.args = ()
        if len(self._free) < _POOL_MAX:
            self._free.append(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            __, __, event = heappop(heap)
            if event.cancelled:
                self._recycle(event)
                continue
            self.now = event.time
            self._executing = True
            try:
                event.fn(*event.args)
            finally:
                self._executing = False
            self._events_processed += 1
            self._recycle(event)
            return True
        return False

    @property
    def executing(self) -> bool:
        """True while an event callback is running.

        Components that coalesce work into same-instant batches use this to
        decide between scheduling a zero-delay flush (inside the event loop,
        where later same-time events may still add to the batch) and
        flushing synchronously (direct calls from test or admin code).
        """
        return self._executing

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` passes, or the budget.

        ``until`` is an absolute simulated time; events scheduled exactly at
        ``until`` still fire, and ``now`` always advances to ``until`` when
        one is given (even on an empty queue) so back-to-back
        ``run(until=...)`` calls carve out uniform windows regardless of
        event density.  ``max_events`` guards against runaway loops; when
        the budget stops the run early, ``now`` stays at the last fired
        event (the window was not fully simulated).
        """
        # Single inlined pop/skip/fire loop (the semantic twin of step()
        # called in a while loop, minus the per-event call overhead).
        # Cancelled entries are dropped wherever they surface at the head,
        # so they neither linger in the heap after an early return nor
        # mask the true next time.  The ``_executing`` flag and the
        # processed counter are maintained per *run*, not per event: no
        # code observes them between events (only callbacks run inside the
        # loop, and they see ``_executing=True`` either way), and the
        # counter is settled in the ``finally`` before ``run`` returns --
        # even when a callback raises.
        heap = self._heap
        free = self._free
        pop = heappop
        limit = until if until is not None else _INF
        budget = max_events if max_events is not None else -1
        executed = 0
        self._executing = True
        try:
            while heap:
                head = heap[0]
                event = head[2]
                if event.cancelled:
                    pop(heap)
                    event.fn = None  # type: ignore[assignment]
                    event.args = ()
                    if len(free) < _POOL_MAX:
                        free.append(event)
                    continue
                if head[0] > limit:
                    break
                if executed == budget:
                    return
                pop(heap)
                self.now = event.time
                event.fn(*event.args)
                executed += 1
                event.fn = None  # type: ignore[assignment]
                event.args = ()
                if len(free) < _POOL_MAX:
                    free.append(event)
        finally:
            self._executing = False
            self._events_processed += executed
        if until is not None and until > self.now:
            self.now = until

    def events_pending(self) -> int:
        """Number of scheduled (non-cancelled) events still in the queue."""
        return sum(1 for __, __, event in self._heap if not event.cancelled)

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Periodic helpers
    # ------------------------------------------------------------------
    def every(
        self,
        period: float,
        fn: Callable[..., None],
        *args: Any,
        until: float | None = None,
    ) -> Callable[[], None]:
        """Run ``fn(*args)`` every ``period`` seconds, starting one period out.

        Returns a zero-argument callable that stops the recurrence.
        """
        if period <= 0:
            raise ValueError(f"period must be positive (got {period})")
        return _Periodic(self, period, fn, args, until).stop

    def timeline(self) -> Iterator[float]:
        """Yield the (sorted) times of currently pending events (debugging)."""
        return iter(sorted(e.time for __, __, e in self._heap if not e.cancelled))

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.6f}, pending={self.events_pending()}, "
            f"processed={self._events_processed})"
        )
