"""Discrete-event network simulation substrate.

This package provides the network on which every IoTSec experiment runs:

- :mod:`repro.netsim.simulator` -- the discrete-event engine (simulated time,
  event scheduling, deterministic ordering).
- :mod:`repro.netsim.packet` -- packets and flow identifiers.
- :mod:`repro.netsim.node` -- network nodes (hosts, devices, middleboxes).
- :mod:`repro.netsim.link` -- point-to-point links with latency and capacity.
- :mod:`repro.netsim.switch` -- an OpenFlow-style switch with a flow table.
- :mod:`repro.netsim.topology` -- builders for common topologies.
- :mod:`repro.netsim.traffic` -- workload/traffic generation helpers.

The simulator substitutes for the paper's physical testbed (OpenDaylight +
real switches); see DESIGN.md section 2.
"""

from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import Flow, Packet
from repro.netsim.simulator import Event, Simulator
from repro.netsim.switch import Switch
from repro.netsim.topology import Topology

__all__ = [
    "Event",
    "Flow",
    "Link",
    "Node",
    "Packet",
    "Simulator",
    "Switch",
    "Topology",
]
