"""Routing-layer attacks: a compromised switch degrading the fabric.

The routing-vulnerabilities literature (sinkhole, selective forwarding)
applied to the paper's own trust assumption: the µmbox architecture only
works while the edge fabric faithfully tunnels device traffic to the
cluster.  A :class:`RoutingAttack` models a compromised first-hop switch
that quietly breaks that assumption:

- **sinkhole** -- tunnel-bound packets are swallowed.  Device traffic
  simply never reaches its µmbox, so no verdicts, no alerts, no
  escalation: the defence goes dark without a single dropped-counter
  increment on the switch itself (the compromise is *silent* by design).
- **selective-forward** -- a seeded fraction of tunnel-bound packets is
  diverted: the tunneled copy is dropped and the raw packet is forwarded
  straight to its destination port instead, bypassing inspection.  The
  fabric still "works" from the user's point of view -- commands land,
  replies return -- which is exactly what makes the degradation hard to
  notice from connectivity alone.

The attack wraps the switch's action-application hook, so it sits below
the flow table and the megaflow cache: every tunnel decision passes
through it while engaged.  ``disengage`` restores the pristine data path.
Engagement and disengagement are journaled (kind ``"routing-attack"``)
because the *simulation* is omniscient evidence even when the defence is
blind -- the incident timeline can show exactly when the fabric lied.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.packet import Packet
    from repro.netsim.switch import Switch

__all__ = ["ROUTING_ATTACK_KINDS", "RoutingAttack"]

#: The supported compromised-switch behaviors.
ROUTING_ATTACK_KINDS = ("sinkhole", "selective-forward")


class RoutingAttack:
    """One compromised switch, reversibly wrapping its data path."""

    def __init__(
        self,
        switch: "Switch",
        mode: str,
        seed: int = 0,
        drop_prob: float = 0.6,
        target: str | None = None,
        direct_ports: Mapping[str, int] | None = None,
    ) -> None:
        if mode not in ROUTING_ATTACK_KINDS:
            raise ValueError(
                f"mode must be one of {ROUTING_ATTACK_KINDS} (got {mode!r})"
            )
        if not 0.0 <= drop_prob <= 1.0:
            raise ValueError(f"drop_prob must be in [0, 1] (got {drop_prob})")
        self.switch = switch
        self.sim = switch.sim
        self.mode = mode
        self.seed = seed
        self.rng = random.Random(seed)
        self.drop_prob = drop_prob
        #: Only packets to/from this device are affected (None = all).
        self.target = target
        #: Device -> switch port for the selective-forward bypass; without
        #: an entry the diverted packet is swallowed like a sinkhole.
        self.direct_ports = dict(direct_ports or {})
        self.sinkholed = 0
        self.bypassed = 0
        self.engaged_at: float | None = None
        self.disengaged_at: float | None = None
        self._original_apply = None
        self._shadowed_apply = None
        metrics = self.sim.metrics
        self.metric_labels = {"switch": metrics.unique(switch.name), "mode": mode}
        metrics.gauge("routing_sinkholed", fn=lambda: self.sinkholed, **self.metric_labels)
        metrics.gauge("routing_bypassed", fn=lambda: self.bypassed, **self.metric_labels)

    # ------------------------------------------------------------------
    @property
    def engaged(self) -> bool:
        return self._original_apply is not None

    def _affects(self, packet: "Packet") -> bool:
        return self.target is None or self.target in (packet.src, packet.dst)

    def engage(self) -> None:
        """Compromise the switch: interpose on its action application."""
        if self.engaged:
            return
        switch = self.switch
        # Stacked attacks compose: remember whether a previous wrapper
        # already shadowed the class method so disengage can restore it.
        self._shadowed_apply = switch.__dict__.get("_apply")
        original = switch._apply
        self._original_apply = original
        mode = self.mode

        def compromised_apply(actions, packet, in_port):
            for action in actions:
                if action.kind == "tunnel" and self._affects(packet):
                    if mode == "sinkhole":
                        # Swallow silently: no drop counter, no punt --
                        # the µmbox simply never hears about the packet.
                        self.sinkholed += 1
                        continue
                    if self.rng.random() < self.drop_prob:
                        # Divert: lose the tunneled copy, hand the raw
                        # packet straight to its destination (uninspected).
                        port = self.direct_ports.get(packet.dst)
                        if port is not None:
                            self.bypassed += 1
                            switch.send(packet, port)
                        else:
                            self.sinkholed += 1
                        continue
                # Anything the attack leaves alone follows the real path.
                original((action,), packet, in_port)

        switch._apply = compromised_apply  # type: ignore[method-assign]
        self.engaged_at = self.sim.now
        self.sim.journal.record(
            "routing-attack",
            device=self.target or "",
            phase="engage",
            mode=self.mode,
            switch=switch.name,
            drop_prob=self.drop_prob if self.mode == "selective-forward" else 1.0,
        )

    def disengage(self) -> None:
        """Restore the pristine data path; journal what was stolen."""
        if not self.engaged:
            return
        if self._shadowed_apply is not None:
            self.switch._apply = self._shadowed_apply  # type: ignore[method-assign]
        else:
            del self.switch._apply  # uncovers the class method again
        self._shadowed_apply = None
        self._original_apply = None
        self.disengaged_at = self.sim.now
        self.sim.journal.record(
            "routing-attack",
            device=self.target or "",
            phase="disengage",
            mode=self.mode,
            switch=self.switch.name,
            sinkholed=self.sinkholed,
            bypassed=self.bypassed,
        )

    def stats(self) -> dict[str, object]:
        return {
            "switch": self.switch.name,
            "mode": self.mode,
            "target": self.target,
            "engaged": self.engaged,
            "engaged_at": self.engaged_at,
            "disengaged_at": self.disengaged_at,
            "sinkholed": self.sinkholed,
            "bypassed": self.bypassed,
        }
