"""An OpenFlow-style switch / access point.

Every IoT device's first-hop edge router "is configured to tunnel packets
to/from the device to the cluster" (paper section 2.2).  The switch holds a
prioritized flow table; unmatched packets are punted to the controller over
the control channel (packet-in), exactly the reactive SDN model the paper
assumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.sdn.flowrule import Action, FlowRule
from repro.sdn.tunnel import TUNNEL_PROTOCOL, detunnel, tunnel_packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator

#: Cache-miss sentinel (``None`` is a valid cached lookup result).
_MISS = object()

#: Megaflow cache bound: IoT homes have few distinct 5-tuples, so the
#: cache normally holds tens of entries; the cap only guards pathological
#: traffic (e.g. a port-scanning attacker) from growing it without bound.
_LOOKUP_CACHE_MAX = 1024


class Switch(Node):
    """A flow-table switch with controller punting and version filtering."""

    def __init__(self, name: str, sim: "Simulator") -> None:
        super().__init__(name, sim)
        self.flow_table: list[FlowRule] = []
        self.active_version: Optional[int] = None
        self.packet_in_handler: Optional[Callable[["Switch", Packet, int], None]] = None
        self.punted = 0
        self.dropped = 0
        self.miss_drops = 0
        # Lookup accelerator: every rule lands in exactly one bucket --
        # keyed by its concrete dst, else by its concrete src, else the
        # wildcard list.  A packet can only match rules in the buckets for
        # its own dst/src (plus wildcards), so lookup scans a handful of
        # candidates instead of the whole table.  Entries carry the
        # precomputed sort key; the winner is the minimum over matches,
        # which is exactly what the sorted linear scan returned (sort keys
        # are totally ordered via the unique rule_id).
        self._by_dst: dict[str, list[tuple[tuple[int, int, int], FlowRule]]] = {}
        self._by_src: dict[str, list[tuple[tuple[int, int, int], FlowRule]]] = {}
        self._wild: list[tuple[tuple[int, int, int], FlowRule]] = []
        # Megaflow cache (the OVS trick): the winning rule per concrete
        # 5-tuple + in_port.  Any table or epoch change clears it -- the
        # scan is the slow path, the cache hit is one dict probe.
        self._lookup_cache: dict[tuple, Optional[FlowRule]] = {}
        # Observability: callback gauges over the counters above -- they
        # cost nothing until a snapshot samples them.
        metrics = sim.metrics
        self.metric_labels = {"switch": metrics.unique(name)}
        metrics.gauge("switch_punted", fn=lambda: self.punted, **self.metric_labels)
        metrics.gauge("switch_dropped", fn=lambda: self.dropped, **self.metric_labels)
        metrics.gauge("switch_miss_drops", fn=lambda: self.miss_drops, **self.metric_labels)
        metrics.gauge("switch_table_size", fn=self.table_size, **self.metric_labels)

    # ------------------------------------------------------------------
    # Flow-table management (the controller calls these, via the channel)
    # ------------------------------------------------------------------
    def _index_add(self, rule: FlowRule) -> None:
        entry = (rule.sort_key(), rule)
        if rule.match.dst is not None:
            self._by_dst.setdefault(rule.match.dst, []).append(entry)
        elif rule.match.src is not None:
            self._by_src.setdefault(rule.match.src, []).append(entry)
        else:
            self._wild.append(entry)

    def _reindex(self) -> None:
        self._by_dst = {}
        self._by_src = {}
        self._wild = []
        self._lookup_cache.clear()
        for rule in self.flow_table:
            self._index_add(rule)

    def install(self, rule: FlowRule) -> None:
        """Install a rule, keeping the table sorted for lookup."""
        self.flow_table.append(rule)
        self.flow_table.sort(key=FlowRule.sort_key)
        self._index_add(rule)
        self._lookup_cache.clear()

    def install_many(self, rules: list[FlowRule]) -> None:
        """Install a batch of rules with a single table re-sort.

        The orchestrator's batched actuation stage pushes one rule batch
        per switch per evaluation round through here.
        """
        if not rules:
            return
        self.flow_table.extend(rules)
        self.flow_table.sort(key=FlowRule.sort_key)
        for rule in rules:
            self._index_add(rule)
        self._lookup_cache.clear()

    def remove_where(self, predicate: Callable[[FlowRule], bool]) -> int:
        """Remove rules satisfying ``predicate``; returns how many."""
        before = len(self.flow_table)
        self.flow_table = [r for r in self.flow_table if not predicate(r)]
        removed = before - len(self.flow_table)
        if removed:
            self._reindex()
        return removed

    def remove_version(self, version: int) -> int:
        """Remove all rules of a configuration epoch."""
        return self.remove_where(lambda r: r.version == version)

    def set_active_version(self, version: Optional[int]) -> None:
        """Flip the active configuration epoch (two-phase update commit)."""
        self.active_version = version
        self._lookup_cache.clear()

    def lookup(self, packet: Packet, in_port: int) -> Optional[FlowRule]:
        """Highest-priority live rule matching the packet, or None.

        A rule is live when it is version-independent or tagged with the
        active version.
        """
        active = self.active_version
        src = packet.src
        dst = packet.dst
        protocol = packet.protocol
        sport = packet.sport
        dport = packet.dport
        cache_key = (src, dst, protocol, sport, dport, in_port)
        cached = self._lookup_cache.get(cache_key, _MISS)
        if cached is not _MISS:
            return cached
        best: Optional[FlowRule] = None
        best_key: Optional[tuple[int, int, int]] = None
        for bucket in (
            self._by_dst.get(dst),
            self._by_src.get(src),
            self._wild,
        ):
            if not bucket:
                continue
            for key, rule in bucket:
                if best_key is not None and key >= best_key:
                    continue
                if rule.version is not None and rule.version != active:
                    continue
                # FlowMatch.matches, inlined over locals: this is the
                # innermost loop of the data path.
                m = rule.match
                if (
                    (m.src is None or m.src == src)
                    and (m.dst is None or m.dst == dst)
                    and (m.protocol is None or m.protocol == protocol)
                    and (m.sport is None or m.sport == sport)
                    and (m.dport is None or m.dport == dport)
                    and (m.in_port is None or m.in_port == in_port)
                ):
                    best, best_key = rule, key
        cache = self._lookup_cache
        if len(cache) >= _LOOKUP_CACHE_MAX:
            cache.clear()
        cache[cache_key] = best
        return best

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet, in_port: int) -> None:
        if (
            packet.protocol == TUNNEL_PROTOCOL
            and packet.dst == self.name
            and packet.payload.get("inspected")
        ):
            # A µmbox returned an inspected packet: decapsulate and run it
            # through the table again.  The in_port is the cluster-facing
            # port, which the orchestrator's bypass rules key on -- that is
            # what prevents re-tunnelling loops.
            inner, __ = detunnel(packet)
            inner.meta["inspected"] = True
            self.on_packet(inner, in_port)
            return
        rule = self.lookup(packet, in_port)
        if rule is None:
            self._table_miss(packet, in_port)
            return
        rule.record_hit(packet)
        self._apply(rule.actions, packet, in_port)

    def _table_miss(self, packet: Packet, in_port: int) -> None:
        if self.packet_in_handler is not None:
            self.punted += 1
            self.packet_in_handler(self, packet, in_port)
        else:
            self.miss_drops += 1

    def _apply(self, actions: tuple[Action, ...], packet: Packet, in_port: int) -> None:
        # Ordered by data-path frequency: edge traffic is dominated by
        # tunnel/forward actions; drop/controller are the cold verdicts.
        for action in actions:
            kind = action.kind
            if kind == "tunnel":
                outer = tunnel_packet(packet, self.name, action.target)
                if action.via is not None:
                    # Address the outer packet to the cluster host so that
                    # intermediate switches can route it there.
                    outer.dst = action.via
                self.send(outer, action.port)
            elif kind == "forward":
                self.send(packet, action.port)
            elif kind == "drop":
                self.dropped += 1
            elif kind == "controller":
                self._table_miss(packet, in_port)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def table_size(self) -> int:
        return len(self.flow_table)

    def rules_for(self, device: str) -> list[FlowRule]:
        """Rules whose match names ``device`` as src or dst."""
        return [
            r for r in self.flow_table if device in (r.match.src, r.match.dst)
        ]
