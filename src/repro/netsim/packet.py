"""Packets and flows.

A :class:`Packet` carries both conventional header fields (addresses, ports,
protocol) and an application-layer ``payload`` dictionary.  IoT protocols in
this library are message-oriented (e.g. ``{"cmd": "on"}`` to a smart plug or
``{"action": "login", "username": ..., "password": ...}`` to a camera), so a
structured payload keeps device and µmbox logic explicit rather than buried
in byte parsing, while ``size`` preserves the traffic-volume dimension.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_PACKET_IDS = itertools.count(1)


@dataclass(frozen=True)
class Flow:
    """A 5-tuple flow identifier."""

    src: str
    dst: str
    protocol: str = "tcp"
    sport: int = 0
    dport: int = 0

    def reversed(self) -> "Flow":
        """The flow for traffic in the opposite direction."""
        return Flow(self.dst, self.src, self.protocol, self.dport, self.sport)


@dataclass
class Packet:
    """A simulated packet / application message.

    Attributes
    ----------
    src, dst:
        Logical addresses (node names).
    protocol:
        Transport/app protocol label: ``"tcp"``, ``"udp"``, ``"http"``,
        ``"dns"``, ``"iot"`` (vendor control protocols), etc.
    sport, dport:
        Port numbers; IoT management interfaces commonly sit on 80/8080.
    payload:
        Structured application content.  Never mutated in place by the
        forwarding path; middleboxes that rewrite use :meth:`copy`.
    size:
        Bytes on the wire, used for bandwidth/volume accounting.
    created_at:
        Simulated send time, stamped by the sender.
    trace:
        Names of nodes the packet traversed, appended by the forwarding
        path; used by tests and by taint-style analyses.
    meta:
        Free-form annotations added by µmboxes (e.g. ``{"verdict": "drop"}``).
    """

    src: str
    dst: str
    protocol: str = "tcp"
    sport: int = 0
    dport: int = 0
    payload: dict[str, Any] = field(default_factory=dict)
    size: int = 64
    created_at: float = 0.0
    pkt_id: int = field(default_factory=lambda: next(_PACKET_IDS))
    trace: list[str] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def flow(self) -> Flow:
        """The packet's 5-tuple flow."""
        return Flow(self.src, self.dst, self.protocol, self.sport, self.dport)

    def copy(self, **overrides: Any) -> "Packet":
        """A deep-enough copy with a fresh packet id and optional overrides.

        ``payload``, ``trace`` and ``meta`` are shallow-copied so the clone
        can be rewritten without mutating the original.
        """
        clone = Packet(
            src=self.src,
            dst=self.dst,
            protocol=self.protocol,
            sport=self.sport,
            dport=self.dport,
            payload=dict(self.payload),
            size=self.size,
            created_at=self.created_at,
            trace=list(self.trace),
            meta=dict(self.meta),
        )
        for key, value in overrides.items():
            setattr(clone, key, value)
        return clone

    def reply(self, payload: dict[str, Any] | None = None, size: int = 64) -> "Packet":
        """Construct a response packet along the reversed flow."""
        return Packet(
            src=self.dst,
            dst=self.src,
            protocol=self.protocol,
            sport=self.dport,
            dport=self.sport,
            payload=dict(payload or {}),
            size=size,
        )

    def __repr__(self) -> str:
        return (
            f"Packet#{self.pkt_id}({self.src}->{self.dst} {self.protocol}"
            f":{self.dport} {self.payload!r})"
        )
