"""Packets and flows.

A :class:`Packet` carries both conventional header fields (addresses, ports,
protocol) and an application-layer ``payload`` dictionary.  IoT protocols in
this library are message-oriented (e.g. ``{"cmd": "on"}`` to a smart plug or
``{"action": "login", "username": ..., "password": ...}`` to a camera), so a
structured payload keeps device and µmbox logic explicit rather than buried
in byte parsing, while ``size`` preserves the traffic-volume dimension.

Hot-path notes: :class:`Packet` is a hand-written ``__slots__`` class (it is
allocated per hop on the forwarding path), :class:`Flow` objects are interned
through a bounded cache so repeated lookups of the same 5-tuple share one
object, and :func:`flow_key` exposes the raw tuple for code that only needs
a dict/set key (connection trackers) without constructing a Flow at all.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

_PACKET_IDS = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Flow:
    """A 5-tuple flow identifier."""

    src: str
    dst: str
    protocol: str = "tcp"
    sport: int = 0
    dport: int = 0

    def reversed(self) -> "Flow":
        """The flow for traffic in the opposite direction."""
        return intern_flow(self.dst, self.src, self.protocol, self.dport, self.sport)


#: Interned flows, keyed by 5-tuple.  Bounded: simulated experiments see a
#: small, recurring set of flows, but a pathological workload must not leak.
_FLOW_CACHE: dict[tuple[str, str, str, int, int], Flow] = {}
_FLOW_CACHE_MAX = 65536


def intern_flow(
    src: str, dst: str, protocol: str = "tcp", sport: int = 0, dport: int = 0
) -> Flow:
    """A shared :class:`Flow` for the given 5-tuple (bounded intern cache)."""
    key = (src, dst, protocol, sport, dport)
    flow = _FLOW_CACHE.get(key)
    if flow is None:
        if len(_FLOW_CACHE) >= _FLOW_CACHE_MAX:
            _FLOW_CACHE.clear()
        flow = Flow(src, dst, protocol, sport, dport)
        _FLOW_CACHE[key] = flow
    return flow


def flow_key(packet: "Packet") -> tuple[str, str, str, int, int]:
    """The packet's 5-tuple as a plain tuple (cheap dict/set key)."""
    return (packet.src, packet.dst, packet.protocol, packet.sport, packet.dport)


class Packet:
    """A simulated packet / application message.

    Attributes
    ----------
    src, dst:
        Logical addresses (node names).
    protocol:
        Transport/app protocol label: ``"tcp"``, ``"udp"``, ``"http"``,
        ``"dns"``, ``"iot"`` (vendor control protocols), etc.
    sport, dport:
        Port numbers; IoT management interfaces commonly sit on 80/8080.
    payload:
        Structured application content.  Never mutated in place by the
        forwarding path; middleboxes that rewrite use :meth:`copy`.
    size:
        Bytes on the wire, used for bandwidth/volume accounting.
    created_at:
        Simulated send time, stamped by the sender.
    trace:
        Names of nodes the packet traversed, appended by the forwarding
        path; used by tests and by taint-style analyses.
    meta:
        Free-form annotations added by µmboxes (e.g. ``{"verdict": "drop"}``).
    """

    __slots__ = (
        "src",
        "dst",
        "protocol",
        "sport",
        "dport",
        "payload",
        "size",
        "created_at",
        "pkt_id",
        "trace",
        "meta",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        protocol: str = "tcp",
        sport: int = 0,
        dport: int = 0,
        payload: dict[str, Any] | None = None,
        size: int = 64,
        created_at: float = 0.0,
        pkt_id: int | None = None,
        trace: list[str] | None = None,
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.sport = sport
        self.dport = dport
        self.payload = {} if payload is None else payload
        self.size = size
        self.created_at = created_at
        self.pkt_id = next(_PACKET_IDS) if pkt_id is None else pkt_id
        self.trace = [] if trace is None else trace
        self.meta = {} if meta is None else meta

    @property
    def flow(self) -> Flow:
        """The packet's 5-tuple flow (interned)."""
        return intern_flow(self.src, self.dst, self.protocol, self.sport, self.dport)

    def copy(self, **overrides: Any) -> "Packet":
        """A deep-enough copy with a fresh packet id and optional overrides.

        ``payload``, ``trace`` and ``meta`` are shallow-copied so the clone
        can be rewritten without mutating the original.
        """
        clone = Packet(
            src=self.src,
            dst=self.dst,
            protocol=self.protocol,
            sport=self.sport,
            dport=self.dport,
            payload=dict(self.payload),
            size=self.size,
            created_at=self.created_at,
            trace=list(self.trace),
            meta=dict(self.meta),
        )
        for key, value in overrides.items():
            setattr(clone, key, value)
        return clone

    def reply(self, payload: dict[str, Any] | None = None, size: int = 64) -> "Packet":
        """Construct a response packet along the reversed flow."""
        return Packet(
            src=self.dst,
            dst=self.src,
            protocol=self.protocol,
            sport=self.dport,
            dport=self.sport,
            payload=dict(payload or {}),
            size=size,
        )

    def __repr__(self) -> str:
        return (
            f"Packet#{self.pkt_id}({self.src}->{self.dst} {self.protocol}"
            f":{self.dport} {self.payload!r})"
        )
