"""Fault injection: declarative plans, seeded chaos, and the standard
resilience scenario (bench E12 / ``repro chaos``)."""

from repro.faults.chaos import ChaosGenerator
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan, long_partition_plan

__all__ = [
    "FAULT_KINDS",
    "ChaosGenerator",
    "FaultEvent",
    "FaultPlan",
    "long_partition_plan",
]
