"""Declarative multi-stage attack campaigns.

The :class:`~repro.faults.plan.FaultPlan` idiom extended from
infrastructure faults to full adversarial *campaigns*: a
:class:`Campaign` is plain data (``as_dict``/``from_dict``/``to_json``
round-trip) describing named stages -- precondition, trigger time,
payload -- with explicit dependencies and seeded timing jitter, executed
against a live :class:`~repro.core.deployment.SecuredDeployment` by a
:class:`CampaignRunner`.

Stage payload kinds:

================  =====================================================
kind              payload (``params``)
================  =====================================================
exploit           ``exploit`` (a :data:`~repro.attacks.exploits.EXPLOITS`
                  name) + its launch kwargs; ``target`` names the victim
command           raw control traffic: ``command`` plus optional
                  ``dport``/``count``/``period``/``use_session``
login             a management-login wave: ``username``/``password`` plus
                  optional ``count``/``period`` (drives the controller's
                  login-attempt escalation window)
fault             one :class:`~repro.faults.plan.FaultEvent` fired now:
                  ``fault`` (a :data:`~repro.faults.plan.FAULT_KINDS`
                  member), ``target``, optional ``duration``/``intensity``
routing-attack    compromise a switch (:mod:`repro.netsim.routing_attacks`):
                  ``mode``, optional ``switch``/``duration``/``drop_prob``
env-set           physical-world manipulation: ``variable``, ``value``
================  =====================================================

Preconditions gate a stage on the world state at fire time (attacker
loot or session, device state, environment level); stage dependencies
gate on earlier stages having executed successfully.  A stage whose gate
fails is journaled as skipped -- campaigns degrade, they do not crash.

Campaign classes (:data:`CAMPAIGN_CLASSES`) group the library for the
per-class scorecard: detection precision/recall, time-to-containment,
exposure windows, and graceful-degradation verdicts, folded into the
health/SLO plane via :func:`attach_campaign_slos` so a containment
breach surfaces as a burn-rate breach rather than a silent miss.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.attacks.exploits import EXPLOITS
from repro.devices import protocol
from repro.environment.variables import DiscreteVariable
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan
from repro.netsim.routing_attacks import ROUTING_ATTACK_KINDS, RoutingAttack

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import SecuredDeployment
    from repro.obs.health import HealthPlane
    from repro.obs.journal import Journal

__all__ = [
    "CAMPAIGN_CLASSES",
    "STAGE_KINDS",
    "PRECONDITION_KINDS",
    "CampaignStage",
    "Campaign",
    "StageResult",
    "CampaignRunner",
    "ContainmentTracker",
    "attach_campaign_slos",
    "score_campaign",
    "journal_digest",
]

#: The four campaign classes of the standing corpus.
CAMPAIGN_CLASSES = (
    "single-flaw",
    "lateral-movement",
    "fabric-degradation",
    "automation-abuse",
)

STAGE_KINDS = ("exploit", "command", "login", "fault", "routing-attack", "env-set")

PRECONDITION_KINDS = ("loot", "session", "device-state", "env-level")

#: Required ``params`` keys per stage kind (validated at parse time).
_REQUIRED_PARAMS: dict[str, tuple[str, ...]] = {
    "exploit": ("exploit",),
    "command": ("command",),
    "login": ("username", "password"),
    "fault": ("fault", "target"),
    "routing-attack": ("mode",),
    "env-set": ("variable", "value"),
}

_REQUIRED_PRECONDITION: dict[str, tuple[str, ...]] = {
    "loot": ("target",),
    "session": ("target",),
    "device-state": ("device", "state"),
    "env-level": ("variable", "level"),
}

#: Default containment deadline (seconds after a target's first attack
#: step before an uncontained target counts as a breach).
DEFAULT_DEADLINE = 15.0


@dataclass(frozen=True)
class CampaignStage:
    """One named stage: precondition -> trigger time -> payload."""

    name: str
    at: float
    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    #: The device this stage attacks ("" for infrastructure stages);
    #: ground truth for the detection/containment scorecard.
    target: str = ""
    #: Seeded uniform jitter bound added to ``at`` by the runner.
    jitter: float = 0.0
    depends_on: tuple[str, ...] = ()
    precondition: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stage name must be non-empty")
        if self.kind not in STAGE_KINDS:
            raise ValueError(f"unknown stage kind {self.kind!r} (know {STAGE_KINDS})")
        if self.at < 0:
            raise ValueError(f"stage time must be >= 0 (got {self.at})")
        if self.jitter < 0:
            raise ValueError(f"stage jitter must be >= 0 (got {self.jitter})")
        if not isinstance(self.params, Mapping):
            raise ValueError(f"stage params must be an object (got {self.params!r})")
        for key in _REQUIRED_PARAMS[self.kind]:
            if key not in self.params:
                raise ValueError(f"{self.kind} stage needs params[{key!r}]")
        if self.kind == "exploit":
            exploit = self.params["exploit"]
            if exploit not in EXPLOITS:
                raise ValueError(
                    f"unknown exploit {exploit!r} (know {sorted(EXPLOITS)})"
                )
        if self.kind in ("exploit", "command", "login") and not self.target:
            raise ValueError(f"{self.kind} stage needs a target device")
        if self.kind == "fault" and self.params["fault"] not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.params['fault']!r} (know {FAULT_KINDS})"
            )
        if self.kind == "routing-attack":
            mode = self.params["mode"]
            if mode not in ROUTING_ATTACK_KINDS:
                raise ValueError(
                    f"unknown routing-attack mode {mode!r} (know {ROUTING_ATTACK_KINDS})"
                )
            prob = float(self.params.get("drop_prob", 0.6))
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"drop_prob must be in [0, 1] (got {prob})")
        if self.precondition is not None:
            if not isinstance(self.precondition, Mapping):
                raise ValueError(
                    f"precondition must be an object (got {self.precondition!r})"
                )
            pkind = self.precondition.get("kind")
            if pkind not in PRECONDITION_KINDS:
                raise ValueError(
                    f"unknown precondition kind {pkind!r} (know {PRECONDITION_KINDS})"
                )
            for key in _REQUIRED_PRECONDITION[pkind]:
                if key not in self.precondition:
                    raise ValueError(f"{pkind} precondition needs {key!r}")

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "at": self.at,
            "kind": self.kind,
            "params": dict(self.params),
        }
        # Optional fields are omitted when unset so hand-written campaign
        # JSON round-trips unchanged (the FaultEvent convention).
        if self.target:
            out["target"] = self.target
        if self.jitter:
            out["jitter"] = self.jitter
        if self.depends_on:
            out["depends_on"] = list(self.depends_on)
        if self.precondition is not None:
            out["precondition"] = dict(self.precondition)
        return out


class Campaign:
    """An ordered, named, seeded multi-stage attack scenario."""

    def __init__(
        self,
        name: str,
        campaign_class: str,
        stages: Iterable[CampaignStage] = (),
        description: str = "",
        seed: int = 0,
        horizon: float = 60.0,
        expect_contained: Iterable[str] = (),
        deadline: float = DEFAULT_DEADLINE,
    ) -> None:
        if not name:
            raise ValueError("campaign name must be non-empty")
        if campaign_class not in CAMPAIGN_CLASSES:
            raise ValueError(
                f"unknown campaign class {campaign_class!r} (know {CAMPAIGN_CLASSES})"
            )
        if horizon <= 0:
            raise ValueError(f"horizon must be positive (got {horizon})")
        if deadline <= 0:
            raise ValueError(f"deadline must be positive (got {deadline})")
        self.name = name
        self.campaign_class = campaign_class
        self.stages = tuple(stages)
        self.description = description
        self.seed = int(seed)
        self.horizon = float(horizon)
        self.expect_contained = tuple(expect_contained)
        self.deadline = float(deadline)
        seen: set[str] = set()
        for i, stage in enumerate(self.stages):
            if stage.name in seen:
                raise ValueError(
                    f"campaign stage #{i} ({stage.name!r}): duplicate stage name"
                )
            for dep_name in stage.depends_on:
                if dep_name not in seen:
                    raise ValueError(
                        f"campaign stage #{i} ({stage.name!r}): depends_on "
                        f"{dep_name!r} which is not an earlier stage"
                    )
            seen.add(stage.name)

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self):
        return iter(self.stages)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Campaign):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    __hash__ = None  # type: ignore[assignment]  # mutable-style container

    def __repr__(self) -> str:
        return (
            f"Campaign({self.name!r}, class={self.campaign_class},"
            f" stages={len(self.stages)})"
        )

    # ------------------------------------------------------------------
    # Round-trip
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "class": self.campaign_class,
            "seed": self.seed,
            "horizon": self.horizon,
            "stages": [stage.as_dict() for stage in self.stages],
        }
        if self.description:
            out["description"] = self.description
        if self.expect_contained:
            out["expect_contained"] = list(self.expect_contained)
        if self.deadline != DEFAULT_DEADLINE:
            out["deadline"] = self.deadline
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Campaign":
        """Build a campaign from plain data, naming any offending stage.

        A malformed stage raises :class:`ValueError` identifying it by
        index and name -- campaigns must fail loudly at parse time, not
        traceback mid-run (the :class:`FaultPlan` contract).
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"campaign must be an object with a 'stages' list "
                f"(got {type(data).__name__})"
            )
        raw_stages = data.get("stages", ())
        if isinstance(raw_stages, (str, Mapping)) or not isinstance(
            raw_stages, Iterable
        ):
            raise ValueError("campaign 'stages' must be a list of stage objects")
        stages: list[CampaignStage] = []
        for i, raw in enumerate(raw_stages):
            label = raw.get("name", "?") if isinstance(raw, Mapping) else "?"
            try:
                precondition = raw.get("precondition")
                stages.append(
                    CampaignStage(
                        name=str(raw["name"]),
                        at=float(raw["at"]),
                        kind=str(raw["kind"]),
                        params=dict(raw.get("params", {})),
                        target=str(raw.get("target", "")),
                        jitter=float(raw.get("jitter", 0.0)),
                        depends_on=tuple(
                            str(d) for d in raw.get("depends_on", ())
                        ),
                        precondition=(
                            dict(precondition) if precondition is not None else None
                        ),
                    )
                )
            except (KeyError, TypeError, ValueError, AttributeError) as exc:
                detail = f"missing field {exc}" if isinstance(exc, KeyError) else exc
                raise ValueError(
                    f"campaign stage #{i} ({label!r}): {detail}"
                ) from exc
        try:
            return cls(
                name=str(data["name"]),
                campaign_class=str(data.get("class", "")),
                stages=stages,
                description=str(data.get("description", "")),
                seed=int(data.get("seed", 0)),
                horizon=float(data.get("horizon", 60.0)),
                expect_contained=tuple(
                    str(d) for d in data.get("expect_contained", ())
                ),
                deadline=float(data.get("deadline", DEFAULT_DEADLINE)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            detail = f"missing field {exc}" if isinstance(exc, KeyError) else exc
            raise ValueError(f"campaign {data.get('name', '?')!r}: {detail}") from exc

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        """Parse a JSON campaign document; all failures become ValueError."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"campaign is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@dataclass
class StageResult:
    """What one stage did when its trigger fired."""

    name: str
    scheduled_at: float
    fired_at: float | None = None
    #: ``ok`` / ``skipped-dep`` / ``skipped-precondition``
    status: str = "pending"
    detail: str = ""


class CampaignRunner:
    """Executes one campaign against a deployment, journaled end to end.

    One seeded RNG (the campaign's seed unless overridden) draws every
    timing jitter and every nested-exploit seed, so the same (campaign,
    seed, deployment) triple replays the identical packet schedule --
    which is what lets the determinism tests demand byte-identical
    journal digests across runs.
    """

    def __init__(
        self,
        campaign: Campaign,
        dep: "SecuredDeployment",
        attacker: Any = None,
        seed: int | None = None,
        tracker: "ContainmentTracker | None" = None,
    ) -> None:
        if attacker is None:
            if not dep.attackers:
                raise ValueError("deployment has no attacker (add_attacker first)")
            attacker = next(iter(dep.attackers.values()))
        self.campaign = campaign
        self.dep = dep
        self.sim = dep.sim
        self.attacker = attacker
        self.seed = campaign.seed if seed is None else seed
        self.rng = random.Random(self.seed)
        self.tracker = tracker
        self.results: dict[str, StageResult] = {}
        self.exploit_results: dict[str, Any] = {}
        self.routing_attacks: list[RoutingAttack] = []
        self.trace_id: int | None = None
        self.started = False

    # ------------------------------------------------------------------
    def start(self) -> "CampaignRunner":
        """Resolve stage times (base + seeded jitter, never before a
        dependency) and arm every stage on the simulator."""
        if self.started:
            return self
        self.started = True
        sim = self.sim
        self.trace_id = sim.tracer.start_trace(
            "", campaign=self.campaign.name, campaign_class=self.campaign.campaign_class
        )
        sim.journal.record(
            "campaign-start",
            trace=self.trace_id,
            campaign=self.campaign.name,
            campaign_class=self.campaign.campaign_class,
            seed=self.seed,
            stages=len(self.campaign.stages),
        )
        for stage in self.campaign.stages:
            fire_at = stage.at
            if stage.jitter:
                fire_at += self.rng.uniform(0.0, stage.jitter)
            # Jitter must not reorder a stage before its dependencies.
            for dep_name in stage.depends_on:
                dep_at = self.results[dep_name].scheduled_at
                if fire_at <= dep_at:
                    fire_at = dep_at + 1e-6
            self.results[stage.name] = StageResult(stage.name, fire_at)
            sim.schedule_at(fire_at, self._fire, stage)
        return self

    # ------------------------------------------------------------------
    def _fire(self, stage: CampaignStage) -> None:
        result = self.results[stage.name]
        result.fired_at = self.sim.now
        status, detail = self._gate(stage)
        if status == "ok":
            try:
                detail = self._execute(stage)
            except (KeyError, TypeError, ValueError) as exc:
                status, detail = "error", str(exc)
        result.status = status
        result.detail = detail
        if (
            status == "ok"
            and self.tracker is not None
            and stage.kind in ("exploit", "command", "login")
            and stage.target
        ):
            self.tracker.note_attack(stage.target, self.sim.now)
        self.sim.journal.record(
            "campaign-stage",
            device=stage.target,
            trace=self.trace_id,
            campaign=self.campaign.name,
            stage=stage.name,
            stage_kind=stage.kind,
            status=status,
            detail=detail,
        )
        self.sim.tracer.span(
            self.trace_id,
            "campaign-stage",
            self.sim.now,
            self.sim.now,
            stage_name=stage.name,
            stage_kind=stage.kind,
            status=status,
        )

    def _gate(self, stage: CampaignStage) -> tuple[str, str]:
        for dep_name in stage.depends_on:
            dep_result = self.results.get(dep_name)
            if dep_result is None or dep_result.status != "ok":
                return "skipped-dep", f"dependency {dep_name!r} did not run"
        if stage.precondition is not None:
            ok, why = self._check_precondition(stage.precondition)
            if not ok:
                return "skipped-precondition", why
        return "ok", ""

    def _check_precondition(self, spec: Mapping[str, Any]) -> tuple[bool, str]:
        kind = spec["kind"]
        if kind == "loot":
            target = str(spec["target"])
            if self.attacker.loot_from(target):
                return True, ""
            return False, f"no loot from {target!r}"
        if kind == "session":
            target = str(spec["target"])
            if self.attacker.session_for(target) is not None:
                return True, ""
            return False, f"no session on {target!r}"
        if kind == "device-state":
            device = str(spec["device"])
            want = str(spec["state"])
            node = self.dep.devices.get(device)
            state = getattr(node, "state", None)
            if state == want:
                return True, ""
            return False, f"{device} is {state!r}, wanted {want!r}"
        # env-level
        variable = str(spec["variable"])
        want = str(spec["level"])
        if variable not in self.dep.env.variables:
            return False, f"no environment variable {variable!r}"
        level = self.dep.env.level(variable)
        if level == want:
            return True, ""
        return False, f"{variable} is {level!r}, wanted {want!r}"

    # ------------------------------------------------------------------
    def _execute(self, stage: CampaignStage) -> str:
        if stage.kind == "exploit":
            return self._execute_exploit(stage)
        if stage.kind == "command":
            return self._execute_command(stage)
        if stage.kind == "login":
            return self._execute_login(stage)
        if stage.kind == "fault":
            return self._execute_fault(stage)
        if stage.kind == "routing-attack":
            return self._execute_routing(stage)
        return self._execute_env_set(stage)

    def _execute_exploit(self, stage: CampaignStage) -> str:
        params = dict(stage.params)
        name = params.pop("exploit")
        if name == "dns_reflection_ddos":
            # The exploit's padding RNG derives from the campaign seed so
            # replays regenerate identical query names.
            params.setdefault("rng", random.Random(self.rng.randrange(1 << 30)))
        result = EXPLOITS[name].launch(self.attacker, stage.target, self.sim, **params)
        self.exploit_results[stage.name] = result
        return f"launched {name} against {stage.target}"

    def _execute_command(self, stage: CampaignStage) -> str:
        params = dict(stage.params)
        cmd = str(params.pop("command"))
        count = int(params.pop("count", 1))
        period = float(params.pop("period", 0.5))
        dport = params.pop("dport", None)
        use_session = bool(params.pop("use_session", False))
        target = stage.target
        attacker = self.attacker

        def fire() -> None:
            session = attacker.session_for(target) if use_session else None
            kwargs: dict[str, Any] = dict(params)
            if dport is not None:
                kwargs["dport"] = int(dport)
            attacker.fire_and_forget(
                protocol.command(attacker.name, target, cmd, session=session, **kwargs)
            )

        fire()
        for i in range(1, count):
            self.sim.schedule(i * period, fire)
        return f"{count}x {cmd!r} to {target}"

    def _execute_login(self, stage: CampaignStage) -> str:
        params = dict(stage.params)
        username = str(params["username"])
        password = str(params["password"])
        count = int(params.get("count", 1))
        period = float(params.get("period", 0.5))
        target = stage.target
        attacker = self.attacker

        def fire() -> None:
            attacker.fire_and_forget(
                protocol.login(attacker.name, target, username, password)
            )

        fire()
        for i in range(1, count):
            self.sim.schedule(i * period, fire)
        return f"{count}x login {username!r} to {target}"

    def _execute_fault(self, stage: CampaignStage) -> str:
        params = stage.params
        event = FaultEvent(
            at=self.sim.now,
            kind=str(params["fault"]),
            target=str(params["target"]),
            duration=float(params.get("duration", 0.0)),
            intensity=float(params.get("intensity", 0.0)),
        )
        FaultPlan([event]).apply(self.dep)
        return f"{event.kind} on {event.target}"

    def _execute_routing(self, stage: CampaignStage) -> str:
        params = stage.params
        switch_name = str(params.get("switch", "edge"))
        if switch_name == "edge" or switch_name == self.dep.EDGE:
            switch = self.dep.edge
        elif switch_name in self.dep.rooms:
            switch = self.dep.rooms[switch_name]
        else:
            raise KeyError(f"no switch {switch_name!r} in the deployment")
        direct_ports: dict[str, int] = {}
        orch = self.dep.orchestrator
        if orch is not None:
            for device, att in orch.attachments.items():
                if att.switch is switch:
                    direct_ports[device] = att.device_port
        attack = RoutingAttack(
            switch,
            mode=str(params["mode"]),
            seed=self.rng.randrange(1 << 30),
            drop_prob=float(params.get("drop_prob", 0.6)),
            target=str(params.get("target", "")) or (stage.target or None),
            direct_ports=direct_ports,
        )
        attack.engage()
        self.routing_attacks.append(attack)
        duration = float(params.get("duration", 10.0))
        if duration > 0:
            self.sim.schedule(duration, attack.disengage)
        return f"{attack.mode} on {switch.name} for {duration:g}s"

    def _execute_env_set(self, stage: CampaignStage) -> str:
        params = stage.params
        name = str(params["variable"])
        if name not in self.dep.env.variables:
            raise KeyError(f"no environment variable {name!r}")
        variable = self.dep.env.variables[name]
        value = params["value"]
        if isinstance(variable, DiscreteVariable):
            variable.set(str(value))
        else:
            variable.set(float(value), at=self.sim.now)
        return f"{name} <- {value!r}"

    # ------------------------------------------------------------------
    def stage_statuses(self) -> dict[str, str]:
        return {name: result.status for name, result in self.results.items()}

    def first_attacks(self) -> dict[str, float]:
        """Device -> time of its first successfully-fired attack stage."""
        out: dict[str, float] = {}
        for stage in self.campaign.stages:
            result = self.results.get(stage.name)
            if result is None or result.status != "ok" or result.fired_at is None:
                continue
            if stage.kind in ("exploit", "command", "login") and stage.target:
                out.setdefault(stage.target, result.fired_at)
        return out


# ----------------------------------------------------------------------
# Containment tracking + SLO fold-in
# ----------------------------------------------------------------------
class ContainmentTracker:
    """Live per-tick verdict: are the expected targets contained in time?

    Polls the orchestrator's enforcement records; an expected target that
    has been attacked but carries no enforcing posture past the campaign
    deadline produces *miss ticks* -- the error signal the campaign SLO
    burns on, so an uncontained campaign becomes a journaled burn-rate
    breach instead of a silently wrong number at the end of the run.
    """

    def __init__(
        self,
        dep: "SecuredDeployment",
        expected: Iterable[str],
        deadline: float = DEFAULT_DEADLINE,
        period: float = 0.5,
    ) -> None:
        self.dep = dep
        self.expected = tuple(expected)
        self.deadline = deadline
        self.first_attack: dict[str, float] = {}
        self.contained: dict[str, float] = {}
        self.ok_ticks = 0
        self.miss_ticks = 0
        self.current_misses: tuple[str, ...] = ()
        self._seen_records = 0
        if self.expected:
            dep.sim.every(period, self._tick)

    def note_attack(self, device: str, at: float) -> None:
        self.first_attack.setdefault(device, at)

    def _scan(self) -> None:
        orch = self.dep.orchestrator
        if orch is None:
            return
        records = orch.records
        if len(records) < self._seen_records:  # controller rebind
            self._seen_records = 0
        for record in records[self._seen_records:]:
            if record.posture not in ("allow", "monitor"):
                self.contained.setdefault(record.device, record.at)
        self._seen_records = len(records)

    def _tick(self) -> None:
        self._scan()
        now = self.dep.sim.now
        misses = tuple(
            device
            for device in self.expected
            if device in self.first_attack
            and device not in self.contained
            and now - self.first_attack[device] > self.deadline
        )
        self.current_misses = misses
        if misses:
            self.miss_ticks += 1
        else:
            self.ok_ticks += 1


def attach_campaign_slos(
    dep: "SecuredDeployment", plane: "HealthPlane", tracker: ContainmentTracker
) -> None:
    """Register the campaign-containment SLO + probe on a health plane.

    Ticks where an expected target sits uncontained past the deadline
    are the SLO's bad events; sustained misses breach the burn-rate
    windows and journal ``slo-breach`` like any other security SLO.
    """
    from repro.obs.health import HEALTH_CRITICAL
    from repro.obs.slo import SEVERITY_CRITICAL, SLO

    if not plane.enabled:
        return
    plane.health.register("campaign")
    plane.slos.add(
        SLO(
            name="campaign-containment",
            subsystem="campaign",
            objective=(
                "expected campaign targets are contained within the deadline "
                "on 95% of evaluation ticks"
            ),
            target=0.95,
            fast_window=5.0,
            slow_window=30.0,
            fast_burn=2.0,
            slow_burn=1.0,
            severity=SEVERITY_CRITICAL,
            signal=lambda: (tracker.ok_ticks, tracker.miss_ticks),
        )
    )
    plane.health.probe(
        "campaign",
        lambda: None
        if not tracker.current_misses
        else (
            HEALTH_CRITICAL,
            f"uncontained past deadline: {', '.join(tracker.current_misses)}",
        ),
    )


# ----------------------------------------------------------------------
# Scorecard
# ----------------------------------------------------------------------
def journal_digest(journal: "Journal") -> str:
    """SHA-256 over the retained journal, canonically serialized.

    The determinism fingerprint: two runs of the same seeded campaign
    must retain byte-identical evidence.  Object-identity fields
    (``pkt``, ``sig_id``, ``msg``) are excluded -- they come from
    process-global counters, so their values depend on how many objects
    earlier runs in the same process created.
    """
    h = hashlib.sha256()
    for entry in journal.entries():
        h.update(
            json.dumps(
                {
                    "seq": entry.seq,
                    "at": entry.at,
                    "kind": entry.kind,
                    "device": entry.device,
                    "fields": {
                        k: v
                        for k, v in entry.fields.items()
                        if k not in ("pkt", "sig_id", "msg")
                    },
                },
                sort_keys=True,
                default=str,
            ).encode("utf-8")
        )
        h.update(b"\n")
    return h.hexdigest()


def score_campaign(
    dep: "SecuredDeployment", runner: CampaignRunner
) -> dict[str, Any]:
    """The per-campaign scorecard (computed after ``dep.run``).

    Fields: detection precision/recall (device granularity, against the
    stages that actually fired), per-target time-to-containment and
    exposure windows, containment misses against ``expect_contained``,
    graceful-degradation verdicts for any µmbox outages, and the routing
    attack totals.
    """
    campaign = runner.campaign
    journal = dep.sim.journal
    horizon = campaign.horizon

    attacked = runner.first_attacks()
    # Indirect victims (pivot/reflection targets) that are managed
    # devices count as attacked from the stage that aimed at them.
    for stage in campaign.stages:
        result = runner.results.get(stage.name)
        if result is None or result.status != "ok" or result.fired_at is None:
            continue
        victim = stage.params.get("victim")
        if isinstance(victim, str) and victim in dep.devices:
            attacked.setdefault(victim, result.fired_at)

    alerted = {
        entry.device
        for entry in journal.entries(kind="alert")
        if entry.device and entry.device in dep.devices
    }
    true_positives = attacked.keys() & alerted
    recall = len(true_positives) / len(attacked) if attacked else 1.0
    precision = len(true_positives) / len(alerted) if alerted else 1.0

    contained: dict[str, float] = {}
    if dep.orchestrator is not None:
        for record in dep.orchestrator.records:
            if record.posture not in ("allow", "monitor"):
                contained.setdefault(record.device, record.at)

    ttc: dict[str, float] = {}
    exposure: dict[str, float] = {}
    misses: list[str] = []
    for device in campaign.expect_contained:
        first = attacked.get(device)
        if first is None:
            # The attack stage never fired: nothing to contain, but the
            # campaign did not exercise its own expectation -- flag it.
            misses.append(device)
            continue
        contained_at = contained.get(device)
        if contained_at is None:
            misses.append(device)
            exposure[device] = round(horizon - first, 6)
            continue
        # Pinned before the attack even began: zero exposure window.
        window = max(0.0, contained_at - first)
        ttc[device] = round(window, 6)
        exposure[device] = round(window, 6)

    outages = list(dep.manager.outages) if dep.manager is not None else []
    repinned = {
        entry.device for entry in journal.entries(kind="chain-repin") if entry.device
    }
    needs_repin = set()
    if dep.orchestrator is not None:
        for outage in outages:
            if outage.restored_at is None:
                continue
            posture = dep.orchestrator.current.get(outage.device)
            if posture is not None and not posture.is_permissive:
                needs_repin.add(outage.device)
    fail_open_passes = dep.cluster.fail_open_passes if dep.cluster else 0
    down_drops = dep.cluster.down_drops if dep.cluster else 0
    graceful = {
        # fail-open passes only ever come from postures that *chose*
        # fail-open degradation; an enforcing posture must not leak.
        "fail_open_only_where_allowed": (
            fail_open_passes == 0 or any(o.fail_mode == "open" for o in outages)
        ),
        "fail_closed_drops": down_drops,
        "repinned_after_recovery": needs_repin <= repinned,
        "outages": len(outages),
        "recovered": sum(1 for o in outages if o.restored_at is not None),
    }
    graceful["ok"] = bool(
        graceful["fail_open_only_where_allowed"]
        and graceful["repinned_after_recovery"]
    )

    routing = [attack.stats() for attack in runner.routing_attacks]
    statuses = runner.stage_statuses()
    return {
        "campaign": campaign.name,
        "class": campaign.campaign_class,
        "seed": runner.seed,
        "horizon_s": horizon,
        "stages": len(campaign.stages),
        "stages_ok": sum(1 for s in statuses.values() if s == "ok"),
        "stage_statuses": statuses,
        "attacked": sorted(attacked),
        "alerted": sorted(alerted),
        "detection_precision": round(precision, 6),
        "detection_recall": round(recall, 6),
        "contained": {d: round(t, 6) for d, t in sorted(contained.items())},
        "containment_misses": sorted(misses),
        "time_to_containment_s": ttc,
        "mean_ttc_s": (
            round(sum(ttc.values()) / len(ttc), 6) if ttc else None
        ),
        "exposure_s": exposure,
        "total_exposure_s": round(sum(exposure.values()), 6),
        "graceful_degradation": graceful,
        "routing": routing,
        "fabric_degraded": any(
            a.sinkholed + a.bypassed > 0 for a in runner.routing_attacks
        ),
        "fail_open_passes": fail_open_passes,
        "down_drops": down_drops,
        "mbox_crashes": dep.manager.crashes if dep.manager else 0,
        "mbox_restarts": dep.manager.restarts if dep.manager else 0,
        "events": dep.sim.events_processed,
    }
