"""Declarative fault plans.

A :class:`FaultPlan` is a schedule of infrastructure faults -- link flaps,
control-channel partitions, µmbox crashes -- expressed in simulated time
and applied to a :class:`~repro.core.deployment.SecuredDeployment`.  Plans
are plain data (``as_dict``/``from_dict`` round-trip through JSON), so a
chaos experiment is reviewable and replayable: the same plan against the
same seed produces the same run.

Fault kinds and their ``target`` syntax:

================  ====================================  =======================
kind              target                                duration
================  ====================================  =======================
link-flap         ``"a:b"`` (link endpoints)            seconds down, then up
partition         endpoint name, or ``"*"`` for all     seconds unreachable
mbox-crash        device name                           ignored (recovery is
                                                        the health loop's job)
controller-crash  ``"controller"`` (informational)      ignored (recovery is
                                                        failover/restart)
alert-storm       device name, or ``"*"`` for all       seconds of flooding at
                                                        ``intensity`` alerts/s
================  ====================================  =======================

Every injected fault is journaled (kind ``"fault"``) so incident
reconstruction shows *why* a device's µmbox died or its alerts stalled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import SecuredDeployment

FAULT_KINDS = (
    "link-flap",
    "partition",
    "mbox-crash",
    "controller-crash",
    "alert-storm",
)

#: Default alert-storm rate when an event does not set ``intensity``.
DEFAULT_STORM_RATE = 200.0


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    at: float
    kind: str
    target: str
    duration: float = 0.0
    #: Alert-storm rate in alerts/second (0 = :data:`DEFAULT_STORM_RATE`);
    #: meaningless for other kinds.
    intensity: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (know {FAULT_KINDS})")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0 (got {self.at})")
        if self.duration < 0:
            raise ValueError(f"fault duration must be >= 0 (got {self.duration})")
        if self.intensity < 0:
            raise ValueError(f"fault intensity must be >= 0 (got {self.intensity})")
        if not self.target:
            raise ValueError("fault target must be non-empty")

    def as_dict(self) -> dict[str, Any]:
        out = {
            "at": self.at,
            "kind": self.kind,
            "target": self.target,
            "duration": self.duration,
        }
        # Omitted when unset so pre-existing plan JSON round-trips unchanged.
        if self.intensity:
            out["intensity"] = self.intensity
        return out


def long_partition_plan(
    start: float = 60.0, hours: float = 2.5, endpoints: str = "*"
) -> "FaultPlan":
    """A multi-hour control-plane blackout (the E14 durability scenario).

    One partition window of ``hours`` simulated hours starting at
    ``start``: the outage a durable telemetry stream must ride out with
    zero loss at bounded memory.  ``endpoints`` narrows the partition
    (e.g. ``"controller"`` blocks only controller-bound traffic);
    the default ``"*"`` severs the whole control channel.
    """
    if hours <= 0:
        raise ValueError(f"hours must be positive (got {hours})")
    return FaultPlan(
        [
            FaultEvent(
                at=start,
                kind="partition",
                target=endpoints,
                duration=hours * 3600.0,
            )
        ]
    )


class FaultPlan:
    """An ordered schedule of :class:`FaultEvent`, applicable to a site."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.at, e.kind, e.target))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def horizon(self) -> float:
        """The simulated time by which every fault has fired and healed."""
        return max((e.at + e.duration for e in self.events), default=0.0)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        return {"events": [e.as_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from plain data, rejecting malformed events.

        Any unknown kind, missing field, or unparseable window raises
        :class:`ValueError` naming the offending event -- a chaos plan
        must fail loudly at parse time, not traceback mid-run.
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"fault plan must be an object with an 'events' list "
                f"(got {type(data).__name__})"
            )
        events = data.get("events", ())
        if isinstance(events, (str, Mapping)) or not isinstance(events, Iterable):
            raise ValueError("fault plan 'events' must be a list of event objects")
        parsed: list[FaultEvent] = []
        for i, e in enumerate(events):
            try:
                parsed.append(
                    FaultEvent(
                        at=float(e["at"]),
                        kind=str(e["kind"]),
                        target=str(e["target"]),
                        duration=float(e.get("duration", 0.0)),
                        intensity=float(e.get("intensity", 0.0)),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                detail = (
                    f"missing field {exc}" if isinstance(exc, KeyError) else exc
                )
                raise ValueError(f"fault event #{i} ({e!r}): {detail}") from exc
        return cls(parsed)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a JSON plan document; all failures become ValueError."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    def apply(self, dep: "SecuredDeployment") -> int:
        """Schedule every fault onto the deployment's simulator.

        Partition windows are installed on the control channel's fault
        model up front (they are declarative, keyed on sim-time); link
        flaps and µmbox crashes are scheduled as events.  Returns the
        number of faults armed.  Unknown link/device targets raise --
        a chaos plan that silently does nothing proves nothing.
        """
        sim = dep.sim
        for event in self.events:
            if event.kind == "partition":
                endpoints = None if event.target == "*" else (event.target,)
                dep.channel.partition(
                    event.at, event.at + event.duration, endpoints
                )
            elif event.kind == "link-flap":
                link = self._find_link(dep, event.target)
                sim.schedule_at(event.at, link.fail)
                if event.duration > 0:
                    sim.schedule_at(event.at + event.duration, link.restore)
            elif event.kind == "mbox-crash":
                if event.target not in dep.devices:
                    raise KeyError(f"mbox-crash target {event.target!r} is not a device")
                assert dep.manager is not None, "mbox-crash needs an IoTSec deployment"
                sim.schedule_at(
                    event.at, dep.manager.crash, event.target, "fault-plan"
                )
            elif event.kind == "controller-crash":
                assert dep.with_iotsec, "controller-crash needs an IoTSec deployment"
                sim.schedule_at(event.at, dep.crash_controller)
            elif event.kind == "alert-storm":
                if event.target != "*" and event.target not in dep.devices:
                    raise KeyError(
                        f"alert-storm target {event.target!r} is not a device"
                    )
                self._start_storm(dep, event)
        # One journal record per fault at its fire time, with full detail.
        for event in self.events:
            device = event.target if event.kind == "mbox-crash" else ""

            def journal(e: FaultEvent = event, device: str = device) -> None:
                sim.journal.record(
                    "fault",
                    device=device,
                    fault=e.kind,
                    target=e.target,
                    duration=e.duration,
                )

            sim.schedule_at(event.at, journal)
        return len(self.events)

    @staticmethod
    def _start_storm(dep: "SecuredDeployment", event: FaultEvent) -> None:
        """Arm a telemetry flood at the controller's ingest path.

        The storm models a compromised fleet (or buggy firmware) spraying
        telemetry at ``intensity`` alerts/second over the event's window,
        round-robin across the target devices.  It rides the ordinary
        control channel, so it competes with real alerts exactly the way
        the load-shedding queue is designed to arbitrate.
        """
        sim = dep.sim
        targets = (
            sorted(dep.devices) if event.target == "*" else [event.target]
        )
        if not targets:
            return
        rate = event.intensity or DEFAULT_STORM_RATE
        period = 1.0 / rate
        end = event.at + event.duration
        counter = {"n": 0}

        def burst() -> None:
            device = targets[counter["n"] % len(targets)]
            counter["n"] += 1
            dep.channel.send(
                "storm",
                dep.CONTROLLER,
                "alert",
                {
                    "device": device,
                    "kind": "telemetry",
                    "detail": {"storm": True, "n": counter["n"]},
                },
            )
            if sim.now + period < end:
                sim.schedule(period, burst)

        sim.schedule_at(event.at, burst)

    @staticmethod
    def _find_link(dep: "SecuredDeployment", target: str):
        a, __, b = target.partition(":")
        if not b:
            raise ValueError(f"link-flap target must be 'a:b' (got {target!r})")
        for link in dep.topology.links:
            if {link.a.name, link.b.name} == {a, b}:
                return link
        raise KeyError(f"no link {a!r}<->{b!r} in the topology")

    def __repr__(self) -> str:
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))
        return f"FaultPlan({len(self.events)} events: {counts or 'empty'})"
