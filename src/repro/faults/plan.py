"""Declarative fault plans.

A :class:`FaultPlan` is a schedule of infrastructure faults -- link flaps,
control-channel partitions, µmbox crashes -- expressed in simulated time
and applied to a :class:`~repro.core.deployment.SecuredDeployment`.  Plans
are plain data (``as_dict``/``from_dict`` round-trip through JSON), so a
chaos experiment is reviewable and replayable: the same plan against the
same seed produces the same run.

Fault kinds and their ``target`` syntax:

=============  ====================================  =======================
kind           target                                duration
=============  ====================================  =======================
link-flap      ``"a:b"`` (link endpoints)            seconds down, then up
partition      endpoint name, or ``"*"`` for all     seconds unreachable
mbox-crash     device name                           ignored (recovery is
                                                     the health loop's job)
=============  ====================================  =======================

Every injected fault is journaled (kind ``"fault"``) so incident
reconstruction shows *why* a device's µmbox died or its alerts stalled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import SecuredDeployment

FAULT_KINDS = ("link-flap", "partition", "mbox-crash")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    at: float
    kind: str
    target: str
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (know {FAULT_KINDS})")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0 (got {self.at})")
        if self.duration < 0:
            raise ValueError(f"fault duration must be >= 0 (got {self.duration})")
        if not self.target:
            raise ValueError("fault target must be non-empty")

    def as_dict(self) -> dict[str, Any]:
        return {
            "at": self.at,
            "kind": self.kind,
            "target": self.target,
            "duration": self.duration,
        }


class FaultPlan:
    """An ordered schedule of :class:`FaultEvent`, applicable to a site."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.at, e.kind, e.target))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def horizon(self) -> float:
        """The simulated time by which every fault has fired and healed."""
        return max((e.at + e.duration for e in self.events), default=0.0)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        return {"events": [e.as_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            FaultEvent(
                at=float(e["at"]),
                kind=str(e["kind"]),
                target=str(e["target"]),
                duration=float(e.get("duration", 0.0)),
            )
            for e in data.get("events", ())
        )

    # ------------------------------------------------------------------
    def apply(self, dep: "SecuredDeployment") -> int:
        """Schedule every fault onto the deployment's simulator.

        Partition windows are installed on the control channel's fault
        model up front (they are declarative, keyed on sim-time); link
        flaps and µmbox crashes are scheduled as events.  Returns the
        number of faults armed.  Unknown link/device targets raise --
        a chaos plan that silently does nothing proves nothing.
        """
        sim = dep.sim
        for event in self.events:
            if event.kind == "partition":
                endpoints = None if event.target == "*" else (event.target,)
                dep.channel.partition(
                    event.at, event.at + event.duration, endpoints
                )
            elif event.kind == "link-flap":
                link = self._find_link(dep, event.target)
                sim.schedule_at(event.at, link.fail)
                if event.duration > 0:
                    sim.schedule_at(event.at + event.duration, link.restore)
            elif event.kind == "mbox-crash":
                if event.target not in dep.devices:
                    raise KeyError(f"mbox-crash target {event.target!r} is not a device")
                assert dep.manager is not None, "mbox-crash needs an IoTSec deployment"
                sim.schedule_at(
                    event.at, dep.manager.crash, event.target, "fault-plan"
                )
        # One journal record per fault at its fire time, with full detail.
        for event in self.events:
            device = event.target if event.kind == "mbox-crash" else ""

            def journal(e: FaultEvent = event, device: str = device) -> None:
                sim.journal.record(
                    "fault",
                    device=device,
                    fault=e.kind,
                    target=e.target,
                    duration=e.duration,
                )

            sim.schedule_at(event.at, journal)
        return len(self.events)

    @staticmethod
    def _find_link(dep: "SecuredDeployment", target: str):
        a, __, b = target.partition(":")
        if not b:
            raise ValueError(f"link-flap target must be 'a:b' (got {target!r})")
        for link in dep.topology.links:
            if {link.a.name, link.b.name} == {a, b}:
                return link
        raise KeyError(f"no link {a!r}<->{b!r} in the topology")

    def __repr__(self) -> str:
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))
        return f"FaultPlan({len(self.events)} events: {counts or 'empty'})"
