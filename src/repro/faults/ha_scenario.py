"""Controller-survivability scenarios: crash/failover and alert storms.

Two seeded, deterministic experiments behind bench E13:

**Failover** (:func:`run_failover_scenario`): one protected home loses its
controller mid-attack.  The camera's brute-force wave starts right after
the crash, so every alert that would escalate it lands on a dead endpoint
(at-least-once retries keep them alive on the wire).  Two arms:

- ``standby=False`` -- the crash arm: the site runs periodic local
  checkpoints but has no replica; an operator cold-restarts the
  controller ``RESTART_AFTER`` seconds later from the latest checkpoint +
  journal tail.  The *blind window* -- attack seconds before the first
  post-crash enforcing posture lands -- is essentially the outage length.
- ``standby=True`` -- the failover arm: a hot standby consumes replicated
  checkpoints and journal deltas, detects the silence by heartbeat
  timeout, and takes over under the primary's endpoint name, so pending
  alert retransmissions deliver to it.  The blind window collapses to
  detection time plus one escalation window.

Background logins *before* the crash are part of the experiment: the
camera needs 5 login attempts inside 30 s to escalate, and two of them
happen pre-crash -- the post-crash escalation only fires promptly because
the restored escalation windows still remember them.

**Storm** (:func:`run_storm_scenario`): the controller's ingest queue
faces a 10x telemetry flood while real enforcing-posture alerts keep
arriving.  With ``shedding=True`` the queue is class-prioritized with
watermark shedding; with ``shedding=False`` it degrades to plain bounded
drop-tail FIFO (same capacity, same service rate).  Headline metrics: the
fraction of enforcing-class alerts processed and per-class P99 queueing
latency.
"""

from __future__ import annotations

from typing import Any

from repro.core.overload import CLASS_NAMES, IngestConfig
from repro.faults.plan import FaultEvent, FaultPlan

#: Failover-scenario schedule (seconds, simulated).
CRASH_AT = 10.0
RESTART_AFTER = 20.0          # cold-restart delay in the no-standby arm
HEARTBEAT_PERIOD = 0.25
FAILOVER_TIMEOUT = 1.0
CHECKPOINT_PERIOD = 2.0
BACKGROUND_LOGINS = (3.0, 6.0)
ATTACK_START = 10.5
ATTACK_PERIOD = 0.5
FAILOVER_HORIZON = 40.0

#: Storm-scenario schedule and rates.
STORM_HORIZON = 20.0
TELEMETRY_RATE = 50.0         # background telemetry, alerts/s over [1, 19)
STORM_RATE = 500.0            # the 10x flood, alerts/s over [5, 13)
ENFORCING_RATE = 20.0         # real alerts for an enforcing device
STORM_START = 5.0
STORM_LEN = 8.0
INGEST_CAPACITY = 128
INGEST_SERVICE_TIME = 0.004   # 250 alerts/s service ceiling


def run_failover_scenario(
    standby: bool,
    seed: int = 7,
    horizon: float = FAILOVER_HORIZON,
    keep_dep: bool = False,
) -> dict[str, Any]:
    """Run one arm of the crash-vs-failover experiment."""
    from repro.core.deployment import SecuredDeployment
    from repro.devices import protocol
    from repro.devices.library import smart_camera, smart_plug
    from repro.policy.posture import block_commands

    dep = SecuredDeployment.build(
        consistent_updates=True,
        reliable_control=True,
        checkpointing=True,
        checkpoint_period=CHECKPOINT_PERIOD,
        standby=standby,
        heartbeat_period=HEARTBEAT_PERIOD,
        failover_timeout=FAILOVER_TIMEOUT,
        ha_seed=seed,
    )
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "plug", load={"hazard": 1.0})
    attacker = dep.add_attacker()
    dep.finalize()

    # The crash is a declared fault -- journaled, reproducible, reviewable.
    FaultPlan([FaultEvent(CRASH_AT, "controller-crash", "controller")]).apply(dep)
    if not standby:
        dep.sim.schedule_at(CRASH_AT + RESTART_AFTER, dep.restart_controller)

    dep.secure("plug", block_commands("on"))  # pinned: survives failover
    dep.enforce_baseline()  # cam: unpinned monitor posture, policy-driven

    # Pre-crash background logins: two of the five the escalation window
    # needs.  Only a restore that rebuilds the sliding windows lets the
    # post-crash wave escalate on its third attempt instead of its fifth.
    for t in BACKGROUND_LOGINS:
        dep.sim.schedule_at(
            t,
            attacker.fire_and_forget,
            protocol.login("attacker", "cam", "admin", "admin"),
        )

    attempts = 0
    t = ATTACK_START
    while t < horizon:
        dep.sim.schedule_at(
            t,
            attacker.fire_and_forget,
            protocol.login("attacker", "cam", "admin", "admin"),
        )
        attempts += 1
        t += ATTACK_PERIOD

    dep.run(until=horizon)

    # Blind window: attack time from the crash until the first *enforcing*
    # posture lands anywhere post-crash (the camera's firewall).
    enforced_at = next(
        (
            r.at
            for r in dep.orchestrator.records
            if r.at > CRASH_AT
            and r.device == "cam"
            and r.posture not in ("allow", "monitor")
        ),
        None,
    )
    blind = (enforced_at - CRASH_AT) if enforced_at is not None else horizon - CRASH_AT

    journal = dep.sim.journal
    failover_entries = journal.entries(kind="failover-complete")
    restart_entries = journal.entries(kind="controller-restart")
    cam = dep.devices["cam"]
    result: dict[str, Any] = {
        "arm": "standby" if standby else "crash",
        "seed": seed,
        "horizon_s": horizon,
        "attack_attempts": attempts,
        "cam_login_successes": sum(
            1 for __, src, __, ok in cam.login_log if ok and src == "attacker"
        ),
        "blind_window_s": round(blind, 6),
        "cam_enforced_at": round(enforced_at, 6) if enforced_at is not None else None,
        "checkpoints": dep.checkpoint_store.captured if dep.checkpoint_store else 0,
        "failovers": len(failover_entries),
        "restarts": len(restart_entries),
        "replayed": (
            failover_entries[0].fields["replayed_alerts"]
            + failover_entries[0].fields["replayed_contexts"]
            if failover_entries
            else (restart_entries[0].fields["replayed"] if restart_entries else 0)
        ),
        "reconciled": (
            failover_entries[0].fields["reconciled"]
            if failover_entries
            else (restart_entries[0].fields["reconciled"] if restart_entries else 0)
        ),
        "ctrl_retries": dep.channel.retries,
        "ctrl_giveups": dep.channel.giveups,
        "ctrl_duplicates": dep.channel.duplicates,
        "dedup_evictions": dep.channel.dedup_evictions,
        "events": dep.sim.events_processed,
    }
    if keep_dep:
        result["dep"] = dep
    return result


def _p99(samples: list[float]) -> float | None:
    if not samples:
        return None
    ordered = sorted(samples)
    return round(ordered[int(0.99 * (len(ordered) - 1))], 6)


def run_storm_scenario(
    shedding: bool,
    seed: int = 7,
    horizon: float = STORM_HORIZON,
    keep_dep: bool = False,
) -> dict[str, Any]:
    """Run one arm of the 10x-alert-storm experiment."""
    from repro.core.deployment import SecuredDeployment
    from repro.devices.library import smart_camera, smart_plug
    from repro.policy.posture import block_commands

    config = IngestConfig(
        capacity=INGEST_CAPACITY,
        service_time=INGEST_SERVICE_TIME,
        prioritized=shedding,
        shed=shedding,
    )
    dep = SecuredDeployment.build(
        consistent_updates=True,
        reliable_control=True,
        ingest=config,
    )
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "plug", load={"hazard": 1.0})
    dep.finalize()
    dep.secure("plug", block_commands("on"))  # enforcing posture -> class 0
    dep.enforce_baseline()

    sim = dep.sim
    controller = dep.controller
    assert controller is not None and controller.ingest is not None
    latencies: dict[int, list[float]] = {0: [], 1: [], 2: []}
    controller.ingest.on_processed = lambda cls, lat: latencies[cls].append(lat)

    # The 10x flood rides the declarative fault plan (journaled).
    FaultPlan(
        [FaultEvent(STORM_START, "alert-storm", "cam", STORM_LEN, intensity=STORM_RATE)]
    ).apply(dep)

    def feed(kind: str, device: str, rate: float, start: float, end: float) -> None:
        period = 1.0 / rate

        def burst() -> None:
            dep.channel.send(
                dep.CLUSTER,
                dep.CONTROLLER,
                "alert",
                {"device": device, "kind": kind, "detail": {"feed": kind}},
            )
            if sim.now + period < end:
                sim.schedule(period, burst)

        sim.schedule_at(start, burst)

    # Routine background telemetry (class 2) and genuine alerts for the
    # enforcing-posture plug (class 0) that must survive the storm.
    feed("telemetry", "cam", TELEMETRY_RATE, 1.0, horizon - 1.0)
    feed("anomalous-command", "plug", ENFORCING_RATE, STORM_START, STORM_START + STORM_LEN)

    dep.run(until=horizon)

    queue = controller.ingest
    stats = queue.stats()
    arrived = [a + d for a, d in zip(queue.accepted, queue.dropped)]
    fractions = {
        CLASS_NAMES[cls]: (
            round(queue.processed[cls] / arrived[cls], 6) if arrived[cls] else None
        )
        for cls in (0, 1, 2)
    }
    result: dict[str, Any] = {
        "arm": "shed" if shedding else "fifo",
        "seed": seed,
        "horizon_s": horizon,
        "storm_rate": STORM_RATE,
        "service_rate": round(1.0 / INGEST_SERVICE_TIME, 6),
        "queue": stats,
        "enforcing_processed_frac": fractions["enforcing"],
        "processed_frac": fractions,
        "p99_latency_s": {
            CLASS_NAMES[cls]: _p99(latencies[cls]) for cls in (0, 1, 2)
        },
        "shed_transitions": queue.shed_transitions,
        "events": sim.events_processed,
    }
    if keep_dep:
        result["dep"] = dep
    return result
