"""The standing campaign corpus: 19 named campaigns over one home.

Every campaign in :data:`CAMPAIGNS` runs against the same
:func:`build_home` deployment -- eight devices from the Table 1 library,
an automation hub with cross-device recipes (the E2 idiom), a
crowdsourced signature feed covering the *known* flaw classes, and one
administrator-pinned enforcing posture (the door lock) -- so per-class
scorecards are comparable across campaigns and across PRs.

The four classes (:data:`~repro.faults.campaign.CAMPAIGN_CLASSES`):

- **single-flaw** -- one device, one Table 1 flaw, the E8 baseline.
- **lateral-movement** -- footholds and pivots across devices (the E5
  attack-graph edges exercised live).
- **fabric-degradation** -- the infrastructure itself is attacked:
  compromised-switch sinkhole/selective-forwarding, µmbox crashes,
  control-channel partitions, seeded chaos.  Containment is expected
  *eventually*; the interesting output is what the degradation window
  cost (and that the campaign-containment SLO burns through it).
- **automation-abuse** -- no packet ever looks malicious: benign IFTTT
  recipes are chained into an attack (section 2.1's break-in).

Deliberate detection gaps are part of the corpus: the plug's *exposed
open port* (8080) has no signature -- only its backdoor does -- so
automation-abuse chains that drive it stay invisible until the
follow-on objective stage.  Per-class recall records the gap instead of
papering over it.

Enforcing classes (:data:`ENFORCING_CLASSES`) must finish with zero
containment misses -- the hard E16 regression gate.  Fabric campaigns
are gated on producing real degradation evidence (sinkholed/bypassed
packets, outages, ``chain-repin``) while still containing by horizon.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.faults.campaign import (
    Campaign,
    CampaignRunner,
    CampaignStage,
    ContainmentTracker,
    attach_campaign_slos,
    journal_digest,
    score_campaign,
)
from repro.faults.chaos import ChaosGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import SecuredDeployment

__all__ = [
    "ENFORCING_CLASSES",
    "CAMPAIGNS",
    "build_home",
    "build_library",
    "campaigns_by_class",
    "get_campaign",
    "run_campaign",
    "run_class",
]

#: Classes whose campaigns must end fully contained (the hard CI gate).
ENFORCING_CLASSES = ("single-flaw", "lateral-movement", "automation-abuse")

#: Well-known ports of the standard home (duplicated as plain ints so
#: campaign JSON round-trips without code references).
WEMO_BACKDOOR = 49153
FIREALARM_BACKDOOR = 41794
OPEN_PORT = 8080
CTRL = 4444

HEALTH_PERIOD = 0.5


# ----------------------------------------------------------------------
# The standard home
# ----------------------------------------------------------------------
def build_home(health: bool = True) -> "SecuredDeployment":
    """One protected home every campaign runs against.

    Defense configuration mirrors the resilient arm of the standard
    scenario: consistent updates, at-least-once control delivery, the
    µmbox health loop, and (by default) the SLO/health plane.  The
    signature feed covers the backdoor/open-port/DNS flaw classes; login
    storms are caught by the monitor posture's login monitor via the
    controller's escalation window.
    """
    from repro.core.deployment import SecuredDeployment
    from repro.core.orchestrator import build_recommended_posture
    from repro.devices.library import (
        cctv_camera,
        door_lock,
        fire_alarm,
        set_top_box,
        smart_camera,
        smart_meter,
        smart_plug,
        window_actuator,
    )
    from repro.learning.repository import CrowdRepository
    from repro.learning.signatures import (
        backdoor_signature,
        dns_amplification_signature,
    )
    from repro.netsim.node import Host
    from repro.policy.ifttt import Recipe

    dep = SecuredDeployment.build(
        consistent_updates=True,
        reliable_control=True,
        health_check_period=HEALTH_PERIOD,
        health=health,
        health_period=HEALTH_PERIOD,
    )
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "plug", load={"hazard": 1.0})
    dep.add_device(window_actuator, "window")
    dep.add_device(door_lock, "lock")
    dep.add_device(fire_alarm, "alarm")
    dep.add_device(set_top_box, "stb")
    dep.add_device(smart_meter, "meter")
    dep.add_device(cctv_camera, "cctv")
    dep.add_attacker()

    # The reflection victim: an unmanaged host on the same edge.
    victim = Host("victim", dep.sim)
    dep.topology.add(victim)
    dep.topology.connect(dep.edge, victim, latency=0.005)

    # The automation layer the abuse class weaponizes.  Env recipes fire
    # on level changes; device recipes are polled edge-triggered.
    hub = dep.hub
    hub.add_recipe(Recipe("welcome-unlock", "dev:plug", "on", "lock", "unlock"))
    hub.add_recipe(Recipe("smoke-vent", "env:smoke", "detected", "window", "open"))
    hub.add_recipe(Recipe("heat-vent", "env:temperature", "high", "window", "open"))
    hub.add_recipe(Recipe("welcome-plug-on", "env:occupancy", "present", "plug", "on"))
    hub.watch_devices(
        lambda name: getattr(dep.devices.get(name), "state", None),
        poll=HEALTH_PERIOD,
    )

    dep.finalize()

    # Crowdsourced signature coverage for the *known* flaw classes.  The
    # plug's exposed 8080 port deliberately has none (see module doc).
    repository = CrowdRepository(dep.sim)
    plug_sku = dep.devices["plug"].sku
    alarm_sku = dep.devices["alarm"].sku
    stb_sku = dep.devices["stb"].sku
    alarm_backdoor = dep.devices["alarm"].firmware.backdoor_port or FIREALARM_BACKDOOR
    for signature in (
        backdoor_signature(plug_sku, WEMO_BACKDOOR),
        backdoor_signature(alarm_sku, alarm_backdoor),
        backdoor_signature(stb_sku, OPEN_PORT),
        dns_amplification_signature(plug_sku),
    ):
        repository.publish(signature, reporter="crowd-seed")
    dep.attach_repository(repository)

    # The administrator's one explicit decision: the front door lock is
    # pinned default-deny (hub and controller stay trusted, so benign --
    # and abused -- automation still passes).  Enforcing => fail-closed.
    dep.secure(
        "lock",
        build_recommended_posture(
            "stateful_firewall", "lock", trusted_sources=(dep.HUB, dep.CONTROLLER)
        ),
    )
    dep.enforce_baseline()
    return dep


# ----------------------------------------------------------------------
# The corpus
# ----------------------------------------------------------------------
S = CampaignStage


def _single_flaw() -> list[Campaign]:
    return [
        Campaign(
            "cam-default-creds",
            "single-flaw",
            description="Default-credential hijack of the camera, then a noisy "
            "credential re-use wave (Table 1 row 1).",
            seed=101,
            horizon=30.0,
            expect_contained=("cam",),
            stages=(
                S("hijack", 2.0, "exploit",
                  {"exploit": "default_credential_hijack"}, target="cam"),
                S("cred-wave", 4.0, "login",
                  {"username": "admin", "password": "admin", "count": 8,
                   "period": 0.4},
                  target="cam", jitter=0.5, depends_on=("hijack",)),
            ),
        ),
        Campaign(
            "plug-backdoor-blast",
            "single-flaw",
            description="Hammer the Wemo debug backdoor (signatured flaw class).",
            seed=102,
            horizon=25.0,
            expect_contained=("plug",),
            stages=(
                S("blast", 2.0, "command",
                  {"command": "on", "dport": WEMO_BACKDOOR, "count": 10,
                   "period": 0.5},
                  target="plug", jitter=0.3),
            ),
        ),
        Campaign(
            "window-bruteforce",
            "single-flaw",
            description="Fig. 3's brute-forced window password.",
            seed=103,
            horizon=25.0,
            expect_contained=("window",),
            stages=(
                S("brute", 2.0, "exploit",
                  {"exploit": "brute_force_login"}, target="window"),
            ),
        ),
        Campaign(
            "meter-default-creds",
            "single-flaw",
            description="Service-account default credentials on the meter; the "
            "dictionary walk itself trips the login-attempt window.",
            seed=104,
            horizon=25.0,
            expect_contained=("meter",),
            stages=(
                S("hijack", 2.0, "exploit",
                  {"exploit": "default_credential_hijack"}, target="meter"),
            ),
        ),
        Campaign(
            "cctv-key-extraction",
            "single-flaw",
            description="Firmware RSA key extraction, then noisy re-use of the "
            "derived credentials (Table 1 row 5).",
            seed=105,
            horizon=30.0,
            expect_contained=("cctv",),
            stages=(
                S("extract", 2.0, "exploit",
                  {"exploit": "firmware_key_extraction"}, target="cctv"),
                S("derived-wave", 4.0, "login",
                  {"username": "root", "password": "derived-from-rsa",
                   "count": 6, "period": 0.3},
                  target="cctv", depends_on=("extract",),
                  precondition={"kind": "loot", "target": "cctv"}),
            ),
        ),
        Campaign(
            "stb-open-probe",
            "single-flaw",
            description="Unauthenticated control via the set-top box's exposed "
            "port (signatured as a backdoor-class flaw).",
            seed=106,
            horizon=25.0,
            expect_contained=("stb",),
            stages=(
                S("probe", 2.0, "exploit",
                  {"exploit": "open_access_control", "port": OPEN_PORT,
                   "command": "play"},
                  target="stb"),
                S("replay", 3.0, "command",
                  {"command": "play", "dport": OPEN_PORT, "count": 6,
                   "period": 0.5},
                  target="stb", jitter=0.4, depends_on=("probe",)),
            ),
        ),
    ]


def _lateral_movement() -> list[Campaign]:
    return [
        Campaign(
            "plug-pivot-lock",
            "lateral-movement",
            description="Backdoor foothold on the plug, then a pivot command "
            "aimed at the door lock through it (E5 graph edge).",
            seed=201,
            horizon=25.0,
            expect_contained=("plug",),
            stages=(
                S("foothold", 2.0, "command",
                  {"command": "on", "dport": WEMO_BACKDOOR, "count": 3,
                   "period": 0.3},
                  target="plug"),
                S("pivot", 4.0, "exploit",
                  {"exploit": "lateral_movement", "backdoor_port": WEMO_BACKDOOR,
                   "victim": "lock", "victim_port": CTRL,
                   "inner_payload": {"cmd": "unlock"}},
                  target="plug", depends_on=("foothold",), jitter=0.3),
            ),
        ),
        Campaign(
            "alarm-pivot-window",
            "lateral-movement",
            description="Fig. 3's chain: fire-alarm backdoor as the launchpad "
            "toward the window actuator.",
            seed=202,
            horizon=25.0,
            expect_contained=("alarm",),
            stages=(
                S("knock", 2.0, "exploit",
                  {"exploit": "backdoor_command",
                   "backdoor_port": FIREALARM_BACKDOOR, "command": "test"},
                  target="alarm"),
                S("pivot", 4.0, "exploit",
                  {"exploit": "lateral_movement",
                   "backdoor_port": FIREALARM_BACKDOOR, "victim": "window",
                   "victim_port": CTRL, "inner_payload": {"cmd": "open"}},
                  target="alarm", depends_on=("knock",), jitter=0.3),
            ),
        ),
        Campaign(
            "dns-reflection-flood",
            "lateral-movement",
            description="The plug's open resolver amplifies a flood into the "
            "victim host (Fig. 5).",
            seed=203,
            horizon=25.0,
            expect_contained=("plug",),
            stages=(
                S("flood", 2.0, "exploit",
                  {"exploit": "dns_reflection_ddos", "victim": "victim",
                   "queries": 40, "rate": 80.0},
                  target="plug"),
            ),
        ),
        Campaign(
            "cam-loot-sweep",
            "lateral-movement",
            description="Loot the camera, sweep on to the meter, and finish on "
            "the window once the credential cache proves out.",
            seed=204,
            horizon=35.0,
            expect_contained=("meter", "window"),
            stages=(
                S("cam-hijack", 2.0, "exploit",
                  {"exploit": "default_credential_hijack"}, target="cam"),
                S("meter-hijack", 5.0, "exploit",
                  {"exploit": "default_credential_hijack"},
                  target="meter", depends_on=("cam-hijack",), jitter=0.5),
                S("window-brute", 8.0, "exploit",
                  {"exploit": "brute_force_login"},
                  target="window", depends_on=("meter-hijack",),
                  precondition={"kind": "loot", "target": "cam"}),
            ),
        ),
    ]


def _fabric_degradation() -> list[Campaign]:
    campaigns = [
        Campaign(
            "sinkhole-blackout",
            "fabric-degradation",
            description="A compromised edge switch sinkholes all tunnel-bound "
            "traffic: the µmboxes go dark while a credential wave runs.  The "
            "containment SLO burns until the fabric recovers.",
            seed=301,
            horizon=30.0,
            expect_contained=("cam",),
            deadline=8.0,
            stages=(
                S("sinkhole", 4.0, "routing-attack",
                  {"mode": "sinkhole", "switch": "edge", "duration": 10.0}),
                S("wave-under-cover", 5.0, "login",
                  {"username": "admin", "password": "admin", "count": 24,
                   "period": 0.5},
                  target="cam", depends_on=("sinkhole",)),
            ),
        ),
        Campaign(
            "selective-forward-smuggle",
            "fabric-degradation",
            description="Selective forwarding diverts a seeded fraction of the "
            "camera's traffic around inspection: enforcement lands, but "
            "smuggled packets keep bypassing it until disengage.",
            seed=302,
            horizon=30.0,
            expect_contained=("cam",),
            stages=(
                S("divert", 3.0, "routing-attack",
                  {"mode": "selective-forward", "switch": "edge",
                   "drop_prob": 0.7, "duration": 12.0, "target": "cam"}),
                S("smuggled-creds", 4.0, "login",
                  {"username": "admin", "password": "admin", "count": 20,
                   "period": 0.4},
                  target="cam", depends_on=("divert",), jitter=0.3),
            ),
        ),
        Campaign(
            "mbox-crash-cover",
            "fabric-degradation",
            description="Crash the pinned lock's µmbox and rattle the lock "
            "during the outage: fail-closed must hold, and recovery must "
            "re-pin the chain.",
            seed=303,
            horizon=25.0,
            expect_contained=("lock",),
            stages=(
                S("crash", 4.0, "fault",
                  {"fault": "mbox-crash", "target": "lock"}),
                S("rattle", 4.5, "login",
                  {"username": "owner", "password": "guess", "count": 10,
                   "period": 0.4},
                  target="lock", depends_on=("crash",)),
            ),
        ),
        Campaign(
            "partition-alert-gap",
            "fabric-degradation",
            description="Brute-force the window inside a control-channel "
            "partition under an alert-storm cover: detection evidence must "
            "survive the gap and land when the channel heals.",
            seed=304,
            horizon=30.0,
            expect_contained=("window",),
            stages=(
                S("cut", 3.0, "fault",
                  {"fault": "partition", "target": "*", "duration": 4.0}),
                S("brute", 3.5, "exploit",
                  {"exploit": "brute_force_login"},
                  target="window", depends_on=("cut",)),
                S("storm", 3.5, "fault",
                  {"fault": "alert-storm", "target": "cam", "duration": 3.0,
                   "intensity": 60.0}),
            ),
        ),
    ]
    campaigns.append(_chaos_assault())
    return campaigns


def _chaos_assault() -> Campaign:
    """Seeded-chaos background (ChaosGenerator) under a persistent attack."""
    plan = ChaosGenerator(seed=23).generate(
        duration=18.0,
        endpoints=("*",),
        devices=("cam", "stb"),
        link_flaps=0,
        partitions=2,
        crashes=2,
        warmup=2.0,
    )
    stages: list[CampaignStage] = []
    for i, event in enumerate(plan.events):
        params: dict[str, Any] = {"fault": event.kind, "target": event.target}
        if event.duration:
            params["duration"] = event.duration
        if event.intensity:
            params["intensity"] = event.intensity
        stages.append(S(f"chaos-{i}", event.at, "fault", params))
    stages.append(
        S("persist", 6.0, "login",
          {"username": "admin", "password": "admin", "count": 16, "period": 0.5},
          target="cam")
    )
    return Campaign(
        "chaos-assault",
        "fabric-degradation",
        description="A seeded chaos schedule (partitions + µmbox crashes from "
        "ChaosGenerator) while a credential wave persists on the camera.",
        seed=305,
        horizon=30.0,
        expect_contained=("cam",),
        stages=stages,
    )


def _automation_abuse() -> list[Campaign]:
    return [
        Campaign(
            "plug-unlock-chain",
            "automation-abuse",
            description="Section 2.1's break-in: turn the plug on through its "
            "exposed port (no signature, no alert), let the welcome-unlock "
            "recipe open the front door, then go for the camera inside.",
            seed=401,
            horizon=30.0,
            expect_contained=("cam",),
            stages=(
                S("plug-on", 2.0, "command",
                  {"command": "on", "dport": OPEN_PORT}, target="plug"),
                S("burgle-cam", 7.0, "exploit",
                  {"exploit": "default_credential_hijack"},
                  target="cam", depends_on=("plug-on",),
                  precondition={"kind": "device-state", "device": "lock",
                                "state": "unlocked"}),
                S("cam-wave", 8.5, "login",
                  {"username": "admin", "password": "admin", "count": 8,
                   "period": 0.4},
                  target="cam", depends_on=("burgle-cam",), jitter=0.4),
            ),
        ),
        Campaign(
            "smoke-vent-breakin",
            "automation-abuse",
            description="Spoof smoke into the environment so the smoke-vent "
            "recipe opens the window, then attack the opened window's "
            "controller.",
            seed=402,
            horizon=25.0,
            expect_contained=("window",),
            stages=(
                S("spoof-smoke", 2.0, "env-set",
                  {"variable": "smoke", "value": 0.9}),
                S("window-entry", 5.0, "exploit",
                  {"exploit": "brute_force_login"},
                  target="window", depends_on=("spoof-smoke",),
                  precondition={"kind": "device-state", "device": "window",
                                "state": "open"}),
            ),
        ),
        Campaign(
            "presence-spoof-hazard",
            "automation-abuse",
            description="Spoof occupancy so the welcome recipe powers the "
            "hazardous plug load, then hold it on via the backdoor.",
            seed=403,
            horizon=25.0,
            expect_contained=("plug",),
            stages=(
                S("spoof-presence", 2.0, "env-set",
                  {"variable": "occupancy", "value": "present"}),
                S("backdoor-hold", 4.0, "command",
                  {"command": "on", "dport": WEMO_BACKDOOR, "count": 8,
                   "period": 0.4},
                  target="plug", depends_on=("spoof-presence",), jitter=0.3),
            ),
        ),
        Campaign(
            "heat-vent-entry",
            "automation-abuse",
            description="Overheat the environment so the heat-vent recipe opens "
            "the window, then probe the pinned lock from inside: the "
            "fail-closed pin must hold.",
            seed=404,
            horizon=25.0,
            expect_contained=("lock",),
            stages=(
                S("heat", 2.0, "env-set",
                  {"variable": "temperature", "value": 40.0}),
                S("probe-lock", 5.0, "login",
                  {"username": "owner", "password": "123456", "count": 8,
                   "period": 0.4},
                  target="lock", depends_on=("heat",),
                  precondition={"kind": "device-state", "device": "window",
                                "state": "open"}),
            ),
        ),
    ]


def build_library() -> dict[str, Campaign]:
    """All shipped campaigns by name (insertion-ordered by class)."""
    campaigns: list[Campaign] = [
        *_single_flaw(),
        *_lateral_movement(),
        *_fabric_degradation(),
        *_automation_abuse(),
    ]
    return {campaign.name: campaign for campaign in campaigns}


#: The standing corpus.
CAMPAIGNS: dict[str, Campaign] = build_library()


def get_campaign(name: str) -> Campaign:
    try:
        return CAMPAIGNS[name]
    except KeyError:
        raise KeyError(
            f"no campaign named {name!r} (know {sorted(CAMPAIGNS)})"
        ) from None


def campaigns_by_class(campaign_class: str) -> list[Campaign]:
    return [c for c in CAMPAIGNS.values() if c.campaign_class == campaign_class]


# ----------------------------------------------------------------------
# Execution + per-class rollup
# ----------------------------------------------------------------------
def run_campaign(
    campaign: Campaign,
    seed: int | None = None,
    health: bool = True,
    keep_dep: bool = False,
) -> dict[str, Any]:
    """Run one campaign against a fresh standard home; return its scorecard.

    Adds the SLO fold-in on top of :func:`score_campaign`: the number of
    journaled breaches overall and of the campaign-containment SLO in
    particular, plus the deterministic journal digest.
    """
    dep = build_home(health=health)
    tracker = ContainmentTracker(
        dep, campaign.expect_contained, deadline=campaign.deadline,
        period=HEALTH_PERIOD,
    )
    if health and dep.health_plane is not None:
        attach_campaign_slos(dep, dep.health_plane, tracker)
    runner = CampaignRunner(campaign, dep, seed=seed, tracker=tracker).start()
    dep.run(until=campaign.horizon)
    score = score_campaign(dep, runner)
    journal = dep.sim.journal
    breaches = journal.entries(kind="slo-breach")
    score["slo_breaches"] = len(breaches)
    score["containment_breaches"] = sum(
        1 for e in breaches if e.fields.get("slo") == "campaign-containment"
    )
    score["repin_count"] = len(journal.entries(kind="chain-repin"))
    score["routing_attack_records"] = len(journal.entries(kind="routing-attack"))
    score["journal_digest"] = journal_digest(journal)
    if keep_dep:
        score["dep"] = dep
        score["runner"] = runner
    return score


def run_class(
    campaign_class: str,
    names: Iterable[str] | None = None,
    health: bool = True,
) -> dict[str, Any]:
    """Run every campaign of a class; return the per-class scorecard."""
    selected = [
        c
        for c in campaigns_by_class(campaign_class)
        if names is None or c.name in set(names)
    ]
    results = [run_campaign(c, health=health) for c in selected]
    attacked = sum(len(r["attacked"]) for r in results)
    detected = sum(
        round(r["detection_recall"] * len(r["attacked"])) for r in results
    )
    ttcs = [t for r in results for t in r["time_to_containment_s"].values()]
    return {
        "class": campaign_class,
        "campaigns": len(results),
        "results": results,
        "containment_misses": sorted(
            {m for r in results for m in r["containment_misses"]}
        ),
        "recall": round(detected / attacked, 6) if attacked else 1.0,
        "mean_ttc_s": round(sum(ttcs) / len(ttcs), 6) if ttcs else None,
        "max_ttc_s": round(max(ttcs), 6) if ttcs else None,
        "total_exposure_s": round(
            sum(r["total_exposure_s"] for r in results), 6
        ),
        "graceful_ok": all(r["graceful_degradation"]["ok"] for r in results),
        "fabric_degraded": any(r["fabric_degraded"] for r in results),
        "containment_breaches": sum(r["containment_breaches"] for r in results),
    }
