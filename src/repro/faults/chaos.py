"""Seeded chaos: generate random-but-reproducible fault plans.

The §4.2 "monkeying" idea applied to the *infrastructure* instead of the
traffic: a :class:`ChaosGenerator` owns one seeded RNG and turns a shape
(how many of each fault, over what horizon, against which targets) into a
concrete :class:`~repro.faults.plan.FaultPlan`.  Same seed, same plan --
chaos runs are experiments, not dice rolls.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.faults.plan import FaultEvent, FaultPlan


class ChaosGenerator:
    """Draws fault schedules from one seeded RNG."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)

    def generate(
        self,
        duration: float,
        links: Sequence[str] = (),
        endpoints: Sequence[str] = ("*",),
        devices: Sequence[str] = (),
        link_flaps: int = 2,
        partitions: int = 1,
        crashes: int = 2,
        min_fault: float = 0.5,
        max_fault: float = 5.0,
        warmup: float = 1.0,
    ) -> FaultPlan:
        """A plan of ``link_flaps + partitions + crashes`` faults.

        Fault times are uniform in ``[warmup, duration)`` (the warmup
        keeps initial enforcement out of the blast radius -- a fault
        before any posture exists tests nothing) and each outage lasts
        uniform ``[min_fault, max_fault]`` seconds.  Target pools that
        are empty simply contribute no faults of that kind.
        """
        if duration <= warmup:
            raise ValueError(f"duration must exceed warmup ({duration} <= {warmup})")
        if min_fault > max_fault:
            raise ValueError(f"min_fault > max_fault ({min_fault} > {max_fault})")
        events: list[FaultEvent] = []
        rng = self.rng

        def when() -> float:
            return rng.uniform(warmup, duration)

        def outage() -> float:
            return rng.uniform(min_fault, max_fault)

        if links:
            for __ in range(link_flaps):
                events.append(
                    FaultEvent(when(), "link-flap", rng.choice(list(links)), outage())
                )
        if endpoints:
            for __ in range(partitions):
                events.append(
                    FaultEvent(
                        when(), "partition", rng.choice(list(endpoints)), outage()
                    )
                )
        if devices:
            for __ in range(crashes):
                events.append(
                    FaultEvent(when(), "mbox-crash", rng.choice(list(devices)))
                )
        return FaultPlan(events)
