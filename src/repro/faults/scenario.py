"""The standard resilience scenario: partition + µmbox crash under attack.

One protected home, two devices, two faults, two arms:

- ``cam`` runs an (unpinned) monitor posture; an attacker hammers its
  default-credential login.  The µmbox's login monitor raises alerts that
  must cross the control channel for the policy loop to escalate the
  camera to a firewall posture -- and the attack begins *inside* a
  control-channel partition, so the first alerts are exactly the ones the
  wire loses.
- ``plug`` is pinned behind a command filter (``block_commands("on")``);
  its µmbox is crashed mid-run while the attacker keeps firing backdoor
  ``on`` commands.

The **resilient** arm uses at-least-once control delivery (alerts and
flow-mods retry across the partition), fail-closed degradation, and the
µmbox health loop (crash -> sweep -> reboot -> chain re-pin).  The
**baseline** arm is the paper's implicit adversary: exactly-once-if-lucky
delivery, no health model, and fail-open degradation -- a lost alert is
lost forever and a dead µmbox silently reverts its device to the
vulnerable default.

Everything is seeded and sim-timed: the same seed reproduces the same
packets, drops, crashes and recoveries, which is what lets bench E12 gate
the exposure window in CI.
"""

from __future__ import annotations

from typing import Any

from repro.faults.plan import FaultEvent, FaultPlan

#: The standard fault schedule (see module docstring).
PARTITION_AT = 4.0
PARTITION_LEN = 3.0
CRASH_AT = 10.0
ATTACK_CAM_START = 4.5
ATTACK_CAM_PERIOD = 0.5
ATTACK_PLUG_START = 1.0
ATTACK_PLUG_PERIOD = 0.25
HORIZON = 30.0
HEALTH_PERIOD = 0.5

#: The federation blackout schedule: first sync and one cross-site
#: signature propagate cleanly, then the coordinator WAN goes dark for a
#: minute while every site is attacked on cached policy.
FEDERATION_BLACKOUT_START = 30.0
FEDERATION_BLACKOUT_END = 90.0
FEDERATION_HORIZON = 120.0
FEDERATION_SYNC_PERIOD = 5.0


def standard_fault_plan() -> FaultPlan:
    """Partition the whole control channel, then crash the plug's µmbox."""
    return FaultPlan(
        [
            FaultEvent(PARTITION_AT, "partition", "*", PARTITION_LEN),
            FaultEvent(CRASH_AT, "mbox-crash", "plug"),
        ]
    )


def run_resilience_scenario(
    resilient: bool,
    seed: int = 7,
    horizon: float = HORIZON,
    drop_prob: float = 0.0,
    jitter: float = 0.0,
    plan: FaultPlan | None = None,
    keep_dep: bool = False,
    health: bool = False,
    setup: Any = None,
) -> dict[str, Any]:
    """Run one arm of the standard scenario; returns the measurements.

    ``drop_prob``/``jitter`` add seeded background loss and delay on top
    of the plan's partitions (the chaos CLI exposes them; the bench keeps
    them at zero so the numbers isolate the two injected faults).  With
    ``keep_dep`` the deployment rides along under ``"dep"`` for forensics
    (``repro incident --chaos``).  ``health`` attaches the SLO/health
    plane (eval period :data:`HEALTH_PERIOD`) and folds its breach
    summary into the result.  ``setup(dep)``, when given, runs right
    before the clock starts (the CLI hooks periodic re-renders there).
    """
    from repro.core.deployment import SecuredDeployment
    from repro.devices import protocol
    from repro.devices.library import WEMO_BACKDOOR_PORT, smart_camera, smart_plug
    from repro.policy.posture import block_commands
    from repro.sdn.channel import FaultModel

    dep = SecuredDeployment.build(
        consistent_updates=True,
        reliable_control=resilient,
        health_check_period=HEALTH_PERIOD if resilient else None,
        health=health,
        health_period=HEALTH_PERIOD,
    )
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "plug", load={"hazard": 1.0})
    attacker = dep.add_attacker()
    dep.finalize()
    dep.channel.inject_faults(FaultModel(seed=seed, drop_prob=drop_prob, jitter=jitter))
    plan = plan or standard_fault_plan()
    plan.apply(dep)

    dep.secure("plug", block_commands("on"))  # pinned, fail-closed
    dep.enforce_baseline()  # cam: unpinned monitor posture, policy-driven

    if not resilient:
        # The no-resilience world has no degradation policy: a dead µmbox
        # simply stops standing between the attacker and the device.
        for mbox in dep.cluster.mboxes.values():
            mbox.fail_mode = "open"

    # -- attack waves ---------------------------------------------------
    cam_attempts = 0
    t = ATTACK_CAM_START
    while t < horizon:
        dep.sim.schedule_at(
            t,
            attacker.fire_and_forget,
            protocol.login("attacker", "cam", "admin", "admin"),
        )
        cam_attempts += 1
        t += ATTACK_CAM_PERIOD
    plug_attempts = 0
    t = ATTACK_PLUG_START
    while t < horizon:
        dep.sim.schedule_at(
            t,
            attacker.fire_and_forget,
            protocol.command(
                "attacker", "plug", "on", dport=WEMO_BACKDOOR_PORT
            ),
        )
        plug_attempts += 1
        t += ATTACK_PLUG_PERIOD

    if setup is not None:
        setup(dep)
    dep.run(until=horizon)

    # -- measurements ---------------------------------------------------
    cam = dep.devices["cam"]
    plug = dep.devices["plug"]
    cam_logins_ok = sum(
        1 for __, src, __, ok in cam.login_log if ok and src == "attacker"
    )
    plug_cmds_ok = sum(
        1 for r in plug.command_log if r.accepted and r.src == "attacker"
    )

    # Time from the first attack packet to the camera's enforcement
    # posture landing (the detect -> escalate -> re-enforce chain).
    cam_enforced_at = next(
        (
            r.at
            for r in dep.orchestrator.records
            if r.device == "cam" and r.posture not in ("allow", "monitor")
        ),
        None,
    )
    cam_exposure = (
        (cam_enforced_at - ATTACK_CAM_START)
        if cam_enforced_at is not None
        else horizon - ATTACK_CAM_START
    )

    # The plug is exposed only while its traffic flows *uninspected*:
    # fail-open downtime counts, fail-closed downtime blocks instead.
    plug_exposure = 0.0
    plug_downtime = 0.0
    reenforce_times = []
    if cam_enforced_at is not None:
        reenforce_times.append(cam_exposure)
    for outage in dep.manager.outages:
        end = outage.restored_at if outage.restored_at is not None else horizon
        plug_downtime += end - outage.down_at
        if outage.fail_mode == "open":
            plug_exposure += end - outage.down_at
        if outage.restored_at is not None:
            reenforce_times.append(outage.restored_at - outage.down_at)

    channel = dep.channel
    result: dict[str, Any] = {
        "arm": "resilient" if resilient else "baseline",
        "seed": seed,
        "horizon_s": horizon,
        "attack_attempts": cam_attempts + plug_attempts,
        "attack_successes": cam_logins_ok + plug_cmds_ok,
        "cam_login_successes": cam_logins_ok,
        "plug_command_successes": plug_cmds_ok,
        "exposure_s": round(cam_exposure + plug_exposure, 6),
        "cam_reenforce_s": (
            round(cam_exposure, 6) if cam_enforced_at is not None else None
        ),
        "plug_downtime_s": round(plug_downtime, 6),
        "mean_time_to_reenforce_s": (
            round(sum(reenforce_times) / len(reenforce_times), 6)
            if reenforce_times
            else None
        ),
        "plug_compromised": "attacker" in plug.compromised_by,
        "ctrl_drops": channel.dropped,
        "ctrl_retries": channel.retries,
        "ctrl_giveups": channel.giveups,
        "ctrl_duplicates": channel.duplicates,
        "mbox_crashes": dep.manager.crashes,
        "mbox_restarts": dep.manager.restarts,
        "down_drops": dep.cluster.down_drops,
        "fail_open_passes": dep.cluster.fail_open_passes,
        "events": dep.sim.events_processed,
    }
    if health and dep.health_plane is not None:
        result["health"] = health_summary(dep)
    if keep_dep:
        result["dep"] = dep
    return result


# ----------------------------------------------------------------------
# Health-plane scenarios (the `repro health` CLI + the regression gate)
# ----------------------------------------------------------------------

#: Named fault plans `repro health --plan` understands.
HEALTH_PLANS = ("none", "standard", "controller", "long-partition")
CONTROLLER_CRASH_AT = 10.0
LONG_PARTITION_START = 60.0
LONG_PARTITION_HOURS = 0.5


def health_summary(dep: Any) -> dict[str, Any]:
    """The health plane's verdict for a finished run, JSON-plain.

    Joins the live snapshot with the journaled ``slo-breach`` /
    ``slo-recover`` chains; ``matched_recoveries`` counts breaches whose
    recovery carries the *same trace id* (the causal pair the regression
    gate asserts on).
    """
    plane = dep.health_plane
    snap = plane.snapshot()
    if not snap.get("enabled"):
        return snap
    journal = dep.sim.journal
    breaches = [
        {
            "at": entry.at,
            "slo": entry.fields.get("slo"),
            "subsystem": entry.fields.get("subsystem"),
            "severity": entry.fields.get("severity"),
            "trace": entry.trace_id,
        }
        for entry in journal.entries(kind="slo-breach")
    ]
    recoveries = [
        {
            "at": entry.at,
            "slo": entry.fields.get("slo"),
            "trace": entry.trace_id,
            "breach_s": entry.fields.get("breach_s"),
        }
        for entry in journal.entries(kind="slo-recover")
    ]
    recovered_traces = {r["trace"] for r in recoveries if r["trace"] is not None}
    matched = sum(1 for b in breaches if b["trace"] in recovered_traces)
    return {
        "enabled": True,
        "rollup": snap["rollup"],
        "subsystems": {
            name: info["state"] for name, info in snap["subsystems"].items()
        },
        "slo_breaches": snap["slo_breaches"],
        "slo_recoveries": snap["slo_recoveries"],
        "matched_recoveries": matched,
        "breach_events": breaches,
        "recovery_events": recoveries,
        "health_transitions": snap["transitions"],
    }


def run_health_scenario(
    plan: str = "none",
    seed: int = 7,
    horizon: float | None = None,
    keep_dep: bool = False,
    setup: Any = None,
) -> dict[str, Any]:
    """Run one named health scenario and return its summary.

    ``plan`` picks the schedule:

    - ``none`` -- the standard seeded run (attacked two-device home with
      the full survivability stack), which must end all-green;
    - ``standard`` -- the resilient arm of the standard chaos scenario
      (partition + µmbox crash);
    - ``controller`` -- primary controller crash with a hot standby
      (failover blind window);
    - ``long-partition`` -- a :data:`LONG_PARTITION_HOURS`-hour control
      blackout over the durable telemetry plane.

    The fault plans must drive deterministic, journaled breach->recovery
    chains; the regression gate asserts exactly that.  ``setup(dep)``,
    when given, runs right before the clock starts.
    """
    from repro.attacks.exploits import EXPLOITS
    from repro.core.deployment import SecuredDeployment
    from repro.devices.library import smart_camera, smart_plug
    from repro.faults.plan import FaultEvent, long_partition_plan

    if plan not in HEALTH_PLANS:
        raise ValueError(f"unknown health plan {plan!r} (choose from {HEALTH_PLANS})")

    if plan == "standard":
        result = run_resilience_scenario(
            resilient=True, seed=seed, horizon=horizon or HORIZON,
            health=True, keep_dep=keep_dep, setup=setup,
        )
        out = dict(result["health"])
        out["plan"] = plan
        out["events"] = result["events"]
        if keep_dep:
            out["dep"] = result["dep"]
        return out

    standby = plan == "controller"
    durable = plan in ("none", "long-partition")
    if horizon is None:
        if plan == "long-partition":
            horizon = LONG_PARTITION_START + LONG_PARTITION_HOURS * 3600.0 + 120.0
        else:
            horizon = 60.0
    dep = SecuredDeployment.build(
        consistent_updates=True,
        reliable_control=True,
        health_check_period=HEALTH_PERIOD,
        durable_telemetry=durable,
        checkpointing=True,
        standby=standby,
        ha_seed=seed,
        health=True,
        health_period=HEALTH_PERIOD,
    )
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "plug")
    attacker = dep.add_attacker()
    dep.finalize()
    dep.enforce_baseline()
    if plan == "none":
        EXPLOITS["brute_force_login"].launch(attacker, "cam", dep.sim)
    elif plan == "controller":
        FaultPlan([FaultEvent(CONTROLLER_CRASH_AT, "controller-crash", "*")]).apply(dep)
    elif plan == "long-partition":
        long_partition_plan(
            start=LONG_PARTITION_START, hours=LONG_PARTITION_HOURS
        ).apply(dep)
    if setup is not None:
        setup(dep)
    dep.run(until=horizon)
    out = health_summary(dep)
    out["plan"] = plan
    out["events"] = dep.sim.events_processed
    if keep_dep:
        out["dep"] = dep
    return out


def run_federation_blackout_scenario(
    sites: int = 4,
    seed: int = 7,
    horizon: float = FEDERATION_HORIZON,
    keep_fed: bool = False,
) -> dict[str, Any]:
    """The seeded coordinator-blackout scenario (federation tentpole).

    Timeline (all simulated seconds, deterministic):

    - ``t=5``   site0's camera is hit before any signature exists -- the
      one expected compromise, the fleet's patient zero;
    - ``t=10``  site0 mines the credential signature and reports it; the
      coordinator versions it and pushes it fleet-wide (one WAN hop);
    - ``t=30``  the whole coordinator WAN partitions for 60 s; every
      site journals ``site-autonomy-enter`` and keeps enforcing on its
      cached signature set;
    - mid-blackout every *other* site's camera is attacked with the same
      exploit -- each must be blocked by the cached signature
      (``enforcement_gaps`` counts any that is not);
    - ``t=50``  site1 mines a backdoor signature offline: enforced
      locally at once, the report queues for the heal;
    - ``t=90``  heal: sync ticks flush the pending report, the
      coordinator versions it, every site replays in order and journals
      ``site-autonomy-exit``;
    - ``t=100`` a compromised site ships a poisoned report (a posture no
      recipe can build); the coordinator quarantines it to the
      federation DLQ and it never consumes a version.
    """
    from repro.attacks.exploits import EXPLOITS
    from repro.federation import Federation
    from repro.learning.signatures import (
        backdoor_signature,
        default_credential_signature,
    )
    from repro.devices.library import smart_camera
    from repro.policy.posture import MboxSpec, Posture

    if sites < 2:
        raise ValueError(f"need at least 2 sites (got {sites})")

    fed = Federation(sync_period=FEDERATION_SYNC_PERIOD)
    attackers: dict[str, Any] = {}

    def populate(dep: Any) -> None:
        dep.add_device(smart_camera, "cam")

    for i in range(sites):
        site = fed.add_site(f"site{i}", populate=populate)
        attackers[site.name] = site.dep.add_attacker()
    sku = fed.sites["site0"].dep.devices["cam"].sku
    posture = Posture.make(
        "forensic-monitor",
        MboxSpec.make("packet_logger", capture=True),
        MboxSpec.make("signature_ids", sku=sku),
    )
    for site in fed.sites.values():
        site.dep.secure("cam", posture)
    fed.attach_health(period=1.0)
    fed.start()
    fed.blackout(FEDERATION_BLACKOUT_START, FEDERATION_BLACKOUT_END)

    results: dict[str, Any] = {}
    gaps: list[str] = []

    def attack(name: str) -> None:
        results[name] = EXPLOITS["default_credential_hijack"].launch(
            attackers[name], "cam", fed.sim, resource="image"
        )

    def blackout_attack(name: str) -> None:
        site = fed.sites[name]
        if not site.enforcing:
            gaps.append(f"{name}: not enforcing mid-blackout")
        attack(name)

    # Patient zero, then the mined signature fans out pre-blackout.
    fed.sim.schedule(5.0, attack, "site0")
    fed.sim.schedule(
        10.0,
        lambda: fed.sites["site0"].mined(default_credential_signature(sku).to_dict()),
    )
    # Mid-blackout: every other site attacked on cached policy only.
    for i in range(1, sites):
        fed.sim.schedule(45.0 + i, blackout_attack, f"site{i}")
    # Offline discovery queues for the heal.
    fed.sim.schedule(
        50.0, lambda: fed.sites["site1"].mined(backdoor_signature(sku, 49153).to_dict())
    )

    # Post-heal poisoning attempt: a recipe no orchestrator can build.
    def poison() -> None:
        wire = default_credential_signature(sku).to_dict()
        wire["recommended_posture"] = "open_all_ports"
        wire["flaw_class"] = "poisoned-bait"
        fed.wan.send(
            fed.sites["site2" if sites > 2 else "site1"].endpoint,
            fed.coordinator.NAME,
            "sig-report",
            {"signature": wire},
        )

    fed.sim.schedule(100.0, poison)
    fed.run(until=horizon)

    for i in range(1, sites):
        name = f"site{i}"
        if attackers[name].loot_from("cam"):
            gaps.append(f"{name}: blackout attack compromised the camera")

    repo = fed.coordinator.repository
    out = {
        "sites": sites,
        "events": fed.sim.events_processed,
        "attacks_launched": len(results),
        "attacks_blocked": sum(1 for r in results.values() if not r.succeeded),
        "patient_zero_compromised": bool(attackers["site0"].loot_from("cam")),
        "enforcement_gaps": len(gaps),
        "gap_details": gaps,
        "signatures_propagated": repo.version,
        "dlq_quarantined": repo.dlq.quarantined,
        "converged": fed.coordinator.converged(),
        "out_of_order": sum(s.out_of_order for s in fed.sites.values()),
        "pending_after": sum(len(s.pending_reports) for s in fed.sites.values()),
        "autonomy_enters": len(fed.sim.journal.entries(kind="site-autonomy-enter")),
        "autonomy_exits": len(fed.sim.journal.entries(kind="site-autonomy-exit")),
        "offline_s": round(sum(s.offline_s for s in fed.sites.values()), 3),
        "propagation_lag_v1": fed.propagation_lag(1),
    }
    if keep_fed:
        out["fed"] = fed
    return out
