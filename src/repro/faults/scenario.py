"""The standard resilience scenario: partition + µmbox crash under attack.

One protected home, two devices, two faults, two arms:

- ``cam`` runs an (unpinned) monitor posture; an attacker hammers its
  default-credential login.  The µmbox's login monitor raises alerts that
  must cross the control channel for the policy loop to escalate the
  camera to a firewall posture -- and the attack begins *inside* a
  control-channel partition, so the first alerts are exactly the ones the
  wire loses.
- ``plug`` is pinned behind a command filter (``block_commands("on")``);
  its µmbox is crashed mid-run while the attacker keeps firing backdoor
  ``on`` commands.

The **resilient** arm uses at-least-once control delivery (alerts and
flow-mods retry across the partition), fail-closed degradation, and the
µmbox health loop (crash -> sweep -> reboot -> chain re-pin).  The
**baseline** arm is the paper's implicit adversary: exactly-once-if-lucky
delivery, no health model, and fail-open degradation -- a lost alert is
lost forever and a dead µmbox silently reverts its device to the
vulnerable default.

Everything is seeded and sim-timed: the same seed reproduces the same
packets, drops, crashes and recoveries, which is what lets bench E12 gate
the exposure window in CI.
"""

from __future__ import annotations

from typing import Any

from repro.faults.plan import FaultEvent, FaultPlan

#: The standard fault schedule (see module docstring).
PARTITION_AT = 4.0
PARTITION_LEN = 3.0
CRASH_AT = 10.0
ATTACK_CAM_START = 4.5
ATTACK_CAM_PERIOD = 0.5
ATTACK_PLUG_START = 1.0
ATTACK_PLUG_PERIOD = 0.25
HORIZON = 30.0
HEALTH_PERIOD = 0.5


def standard_fault_plan() -> FaultPlan:
    """Partition the whole control channel, then crash the plug's µmbox."""
    return FaultPlan(
        [
            FaultEvent(PARTITION_AT, "partition", "*", PARTITION_LEN),
            FaultEvent(CRASH_AT, "mbox-crash", "plug"),
        ]
    )


def run_resilience_scenario(
    resilient: bool,
    seed: int = 7,
    horizon: float = HORIZON,
    drop_prob: float = 0.0,
    jitter: float = 0.0,
    plan: FaultPlan | None = None,
    keep_dep: bool = False,
) -> dict[str, Any]:
    """Run one arm of the standard scenario; returns the measurements.

    ``drop_prob``/``jitter`` add seeded background loss and delay on top
    of the plan's partitions (the chaos CLI exposes them; the bench keeps
    them at zero so the numbers isolate the two injected faults).  With
    ``keep_dep`` the deployment rides along under ``"dep"`` for forensics
    (``repro incident --chaos``).
    """
    from repro.core.deployment import SecuredDeployment
    from repro.devices import protocol
    from repro.devices.library import WEMO_BACKDOOR_PORT, smart_camera, smart_plug
    from repro.policy.posture import block_commands
    from repro.sdn.channel import FaultModel

    dep = SecuredDeployment.build(
        consistent_updates=True,
        reliable_control=resilient,
        health_check_period=HEALTH_PERIOD if resilient else None,
    )
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "plug", load={"hazard": 1.0})
    attacker = dep.add_attacker()
    dep.finalize()
    dep.channel.inject_faults(FaultModel(seed=seed, drop_prob=drop_prob, jitter=jitter))
    plan = plan or standard_fault_plan()
    plan.apply(dep)

    dep.secure("plug", block_commands("on"))  # pinned, fail-closed
    dep.enforce_baseline()  # cam: unpinned monitor posture, policy-driven

    if not resilient:
        # The no-resilience world has no degradation policy: a dead µmbox
        # simply stops standing between the attacker and the device.
        for mbox in dep.cluster.mboxes.values():
            mbox.fail_mode = "open"

    # -- attack waves ---------------------------------------------------
    cam_attempts = 0
    t = ATTACK_CAM_START
    while t < horizon:
        dep.sim.schedule_at(
            t,
            attacker.fire_and_forget,
            protocol.login("attacker", "cam", "admin", "admin"),
        )
        cam_attempts += 1
        t += ATTACK_CAM_PERIOD
    plug_attempts = 0
    t = ATTACK_PLUG_START
    while t < horizon:
        dep.sim.schedule_at(
            t,
            attacker.fire_and_forget,
            protocol.command(
                "attacker", "plug", "on", dport=WEMO_BACKDOOR_PORT
            ),
        )
        plug_attempts += 1
        t += ATTACK_PLUG_PERIOD

    dep.run(until=horizon)

    # -- measurements ---------------------------------------------------
    cam = dep.devices["cam"]
    plug = dep.devices["plug"]
    cam_logins_ok = sum(
        1 for __, src, __, ok in cam.login_log if ok and src == "attacker"
    )
    plug_cmds_ok = sum(
        1 for r in plug.command_log if r.accepted and r.src == "attacker"
    )

    # Time from the first attack packet to the camera's enforcement
    # posture landing (the detect -> escalate -> re-enforce chain).
    cam_enforced_at = next(
        (
            r.at
            for r in dep.orchestrator.records
            if r.device == "cam" and r.posture not in ("allow", "monitor")
        ),
        None,
    )
    cam_exposure = (
        (cam_enforced_at - ATTACK_CAM_START)
        if cam_enforced_at is not None
        else horizon - ATTACK_CAM_START
    )

    # The plug is exposed only while its traffic flows *uninspected*:
    # fail-open downtime counts, fail-closed downtime blocks instead.
    plug_exposure = 0.0
    plug_downtime = 0.0
    reenforce_times = []
    if cam_enforced_at is not None:
        reenforce_times.append(cam_exposure)
    for outage in dep.manager.outages:
        end = outage.restored_at if outage.restored_at is not None else horizon
        plug_downtime += end - outage.down_at
        if outage.fail_mode == "open":
            plug_exposure += end - outage.down_at
        if outage.restored_at is not None:
            reenforce_times.append(outage.restored_at - outage.down_at)

    channel = dep.channel
    result: dict[str, Any] = {
        "arm": "resilient" if resilient else "baseline",
        "seed": seed,
        "horizon_s": horizon,
        "attack_attempts": cam_attempts + plug_attempts,
        "attack_successes": cam_logins_ok + plug_cmds_ok,
        "cam_login_successes": cam_logins_ok,
        "plug_command_successes": plug_cmds_ok,
        "exposure_s": round(cam_exposure + plug_exposure, 6),
        "cam_reenforce_s": (
            round(cam_exposure, 6) if cam_enforced_at is not None else None
        ),
        "plug_downtime_s": round(plug_downtime, 6),
        "mean_time_to_reenforce_s": (
            round(sum(reenforce_times) / len(reenforce_times), 6)
            if reenforce_times
            else None
        ),
        "plug_compromised": "attacker" in plug.compromised_by,
        "ctrl_drops": channel.dropped,
        "ctrl_retries": channel.retries,
        "ctrl_giveups": channel.giveups,
        "ctrl_duplicates": channel.duplicates,
        "mbox_crashes": dep.manager.crashes,
        "mbox_restarts": dep.manager.restarts,
        "down_drops": dep.cluster.down_drops,
        "fail_open_passes": dep.cluster.fail_open_passes,
        "events": dep.sim.events_processed,
    }
    if keep_dep:
        result["dep"] = dep
    return result
