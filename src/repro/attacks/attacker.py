"""The attacker host.

A :class:`Attacker` is a :class:`~repro.netsim.node.Host` that correlates
replies back to the request that caused them (FIFO per peer -- sufficient
in a deterministic simulation) so exploits can chain: log in, harvest the
session token, then issue authenticated commands.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import TYPE_CHECKING, Any, Callable

from repro.netsim.node import Host
from repro.netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator

ReplyCallback = Callable[[Packet], None]


class Attacker(Host):
    """A remote adversary with per-target session state."""

    def __init__(self, name: str, sim: "Simulator") -> None:
        super().__init__(name, sim)
        self.sessions: dict[str, str] = {}      # target -> session token
        self.loot: list[dict[str, Any]] = []    # exfiltrated resources
        self._pending: dict[str, deque[ReplyCallback]] = defaultdict(deque)
        self.requests_sent = 0
        self.replies_seen = 0

    def request(self, packet: Packet, on_reply: ReplyCallback | None = None) -> None:
        """Send ``packet`` and register a callback for the next reply from
        its destination."""
        if on_reply is not None:
            self._pending[packet.dst].append(on_reply)
        self.requests_sent += 1
        self._journal_step(packet)
        self.send(packet)

    def fire_and_forget(self, packet: Packet) -> None:
        self.requests_sent += 1
        self._journal_step(packet)
        self.send(packet)

    def _journal_step(self, packet: Packet) -> None:
        # Ground truth for forensics: what the adversary actually sent,
        # journaled against the *target* device's audit trail.
        self.sim.journal.record(
            "attack-step",
            device=packet.dst,
            attacker=self.name,
            pkt=packet.pkt_id,
            dport=packet.dport,
            proto=packet.payload.get("proto", ""),
        )

    def on_packet(self, packet: Packet, in_port: int) -> None:
        self.inbox.append(packet)
        self.replies_seen += 1
        queue = self._pending.get(packet.src)
        if queue:
            callback = queue.popleft()
            callback(packet)

    # ------------------------------------------------------------------
    # Session bookkeeping used by exploits
    # ------------------------------------------------------------------
    def store_session(self, target: str, token: str) -> None:
        self.sessions[target] = token

    def session_for(self, target: str) -> str | None:
        return self.sessions.get(target)

    def record_loot(self, target: str, resource: str, data: Any) -> None:
        self.loot.append({"target": target, "resource": resource, "data": data})
        # The smoking gun: data actually left the device.
        self.sim.journal.record(
            "exfiltration",
            device=target,
            attacker=self.name,
            resource=resource,
        )

    def loot_from(self, target: str) -> list[dict[str, Any]]:
        return [item for item in self.loot if item["target"] == target]
