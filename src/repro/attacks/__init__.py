"""Attacker models.

Every experiment needs a red team.  This package provides:

- :mod:`repro.attacks.attacker` -- an attacker host with request/response
  correlation (it can log in, keep sessions, and chain actions).
- :mod:`repro.attacks.exploits` -- one exploit primitive per Table 1 flaw
  class (default credentials, exposed access, embedded keys, no-credential
  control, open DNS resolver reflection, vendor backdoor) plus brute force.
- :mod:`repro.attacks.scenarios` -- multi-stage campaigns, including the
  paper's two narrative attacks: the Fig. 3 fire-alarm/window break-in and
  the section 2.1 smart-plug -> temperature -> window physical breach.
"""

from repro.attacks.attacker import Attacker
from repro.attacks.exploits import EXPLOITS, Exploit, ExploitResult

__all__ = ["Attacker", "EXPLOITS", "Exploit", "ExploitResult"]
