"""Multi-stage attack campaigns.

Section 4.2 closes with "triggering device X to transition to state SX and
then using that to reach an eventual goal state (e.g., unlocking the door)".
A :class:`Campaign` scripts such stages against the simulation; the two
canned campaigns are the paper's own narratives:

- :func:`fig3_break_in` -- compromise the FireAlarm via its backdoor to
  force the alarm state, counting on a ventilation rule to open the window
  (and, as the fallback transition in Fig. 3, brute-force the window's
  password directly).
- :func:`thermal_break_in` -- the section 2.1 scenario: backdoor the smart
  plug powering the AC, turn it off, let the room heat up, and wait for the
  IFTTT cool-down rule to open the window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.attacks.attacker import Attacker
from repro.attacks.exploits import (
    BackdoorCommand,
    BruteForceLogin,
    ExploitResult,
)
from repro.devices.library import FIREALARM_BACKDOOR_PORT, WEMO_BACKDOOR_PORT

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator


@dataclass
class Stage:
    """One step of a campaign: a delay, an action, and a label."""

    at: float
    action: Callable[[], ExploitResult | None]
    label: str
    result: ExploitResult | None = None


@dataclass
class Campaign:
    """An ordered multi-stage attack with a final goal predicate."""

    name: str
    attacker: Attacker
    stages: list[Stage] = field(default_factory=list)
    goal: Callable[[], bool] | None = None
    goal_reached_at: float | None = None

    def add_stage(
        self, at: float, label: str, action: Callable[[], ExploitResult | None]
    ) -> None:
        self.stages.append(Stage(at=at, action=action, label=label))

    def launch(self, sim: "Simulator", goal_poll: float = 1.0, until: float = 3600.0) -> None:
        """Schedule every stage and start polling the goal predicate."""
        for stage in self.stages:
            def run(st: Stage = stage) -> None:
                st.result = st.action()

            sim.schedule(stage.at, run)
        if self.goal is not None:
            def poll() -> None:
                if self.goal_reached_at is None and self.goal():
                    self.goal_reached_at = sim.now
                elif self.goal_reached_at is None and sim.now + goal_poll <= until:
                    sim.schedule(goal_poll, poll)

            sim.schedule(goal_poll, poll)

    def succeeded(self) -> bool:
        return self.goal_reached_at is not None

    def stage_results(self) -> dict[str, Any]:
        return {
            stage.label: (stage.result.succeeded if stage.result else None)
            for stage in self.stages
        }


def fig3_break_in(
    attacker: Attacker,
    sim: "Simulator",
    fire_alarm: str = "fire_alarm",
    window: str = "window",
    window_is_open: Callable[[], bool] | None = None,
    backdoor_at: float = 5.0,
    brute_force_at: float = 30.0,
) -> Campaign:
    """The Fig. 3 campaign: both attack transitions in the policy FSM.

    Stage 1 accesses the FireAlarm's backdoor and forces the alarm state
    (an automation rule "if alarm then open window for ventilation" is the
    intended victim).  Stage 2 is the alternative edge: brute-force the
    window actuator's weak password and open it directly.
    """
    campaign = Campaign(name="fig3_break_in", attacker=attacker, goal=window_is_open)
    backdoor = BackdoorCommand()
    brute = BruteForceLogin()

    campaign.add_stage(
        backdoor_at,
        "firealarm_backdoor",
        lambda: backdoor.launch(
            attacker, fire_alarm, sim, backdoor_port=FIREALARM_BACKDOOR_PORT, command="test"
        ),
    )
    campaign.add_stage(
        brute_force_at,
        "window_brute_force",
        lambda: brute.launch(attacker, window, sim, command="open"),
    )
    return campaign


def thermal_break_in(
    attacker: Attacker,
    sim: "Simulator",
    ac_plug: str = "ac_plug",
    window_is_open: Callable[[], bool] | None = None,
    attack_at: float = 10.0,
) -> Campaign:
    """Section 2.1's implicit-coupling attack.

    One packet to the plug's backdoor turns off the air conditioner; the
    rest of the attack is executed *by the environment and the victim's own
    automation*: temperature rises, the IFTTT cool-down recipe opens the
    window, and physical security is breached without the window ever
    receiving attacker traffic.
    """
    campaign = Campaign(name="thermal_break_in", attacker=attacker, goal=window_is_open)
    backdoor = BackdoorCommand()
    campaign.add_stage(
        attack_at,
        "plug_backdoor_off",
        lambda: backdoor.launch(
            attacker, ac_plug, sim, backdoor_port=WEMO_BACKDOOR_PORT, command="off"
        ),
    )
    return campaign


def oven_arson(
    attacker: Attacker,
    sim: "Simulator",
    oven_plug: str = "oven_plug",
    smoke_detected: Callable[[], bool] | None = None,
    attack_at: float = 10.0,
) -> Campaign:
    """Fig. 5's danger case: remotely power the oven while nobody is home."""
    campaign = Campaign(name="oven_arson", attacker=attacker, goal=smoke_detected)
    backdoor = BackdoorCommand()
    campaign.add_stage(
        attack_at,
        "oven_plug_backdoor_on",
        lambda: backdoor.launch(
            attacker, oven_plug, sim, backdoor_port=WEMO_BACKDOOR_PORT, command="on"
        ),
    )
    return campaign
