"""Typed environment variables.

The policy abstraction of section 3.2 needs each environmental variable
``Ej`` to "take one or more discrete values (e.g., Temperature=High/Low,
Window=Open/Closed, Smoke=Yes/No)".  Physics, however, is continuous.  A
:class:`ContinuousVariable` therefore carries *thresholds* that map its raw
value to a discrete *level*; policy states are built from levels, physics
runs on raw values.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Sequence


class EnvironmentVariable:
    """Base class: a named, observable value."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._observers: list[Callable[["EnvironmentVariable"], None]] = []

    def observe(self, callback: Callable[["EnvironmentVariable"], None]) -> None:
        """Register a callback fired whenever the *level* changes."""
        self._observers.append(callback)

    def _notify(self) -> None:
        for callback in list(self._observers):
            callback(self)

    @property
    def level(self) -> str:
        """The discrete policy-visible value."""
        raise NotImplementedError

    def levels(self) -> tuple[str, ...]:
        """All levels this variable can take (the policy domain)."""
        raise NotImplementedError


class DiscreteVariable(EnvironmentVariable):
    """A variable with an explicit finite domain (Window=open/closed)."""

    def __init__(self, name: str, domain: Sequence[str], initial: str | None = None) -> None:
        super().__init__(name)
        if not domain:
            raise ValueError(f"{name}: domain must be non-empty")
        if len(set(domain)) != len(domain):
            raise ValueError(f"{name}: domain has duplicates: {domain}")
        self.domain = tuple(domain)
        value = initial if initial is not None else self.domain[0]
        if value not in self.domain:
            raise ValueError(f"{name}: initial {value!r} not in domain {domain}")
        self._value = value

    @property
    def value(self) -> str:
        return self._value

    def set(self, value: str) -> None:
        if value not in self.domain:
            raise ValueError(f"{self.name}: {value!r} not in domain {self.domain}")
        changed = value != self._value
        self._value = value
        if changed:
            self._notify()

    @property
    def level(self) -> str:
        return self._value

    def levels(self) -> tuple[str, ...]:
        return self.domain

    def __repr__(self) -> str:
        return f"DiscreteVariable({self.name}={self._value})"


class ContinuousVariable(EnvironmentVariable):
    """A real-valued variable with threshold-based discretization.

    ``thresholds`` are the ascending cut points between consecutive
    ``level_names``; ``len(level_names) == len(thresholds) + 1``.

    >>> temp = ContinuousVariable(
    ...     "temperature", initial=21.0,
    ...     thresholds=(10.0, 26.0), level_names=("low", "normal", "high"),
    ... )
    >>> temp.level
    'normal'
    """

    def __init__(
        self,
        name: str,
        initial: float = 0.0,
        thresholds: Sequence[float] = (),
        level_names: Sequence[str] | None = None,
        minimum: float | None = None,
        maximum: float | None = None,
    ) -> None:
        super().__init__(name)
        self.thresholds = tuple(thresholds)
        if any(b <= a for a, b in zip(self.thresholds, self.thresholds[1:])):
            raise ValueError(f"{name}: thresholds must be strictly ascending")
        if level_names is None:
            level_names = tuple(f"level{i}" for i in range(len(self.thresholds) + 1))
        if len(level_names) != len(self.thresholds) + 1:
            raise ValueError(
                f"{name}: need {len(self.thresholds) + 1} level names, "
                f"got {len(level_names)}"
            )
        self.level_names = tuple(level_names)
        self.minimum = minimum
        self.maximum = maximum
        self._value = self._clamp(initial)
        # The discrete level is maintained on write (one bisect per set)
        # rather than recomputed on every read -- physics ticks call
        # ``set``/``add`` at simulation frequency.
        self._level = self.level_names[bisect_right(self.thresholds, self._value)]
        #: (time, value) samples; bounded so week-long simulations do not
        #: accumulate gigabytes of physics history.
        self.history: list[tuple[float, float]] = []
        self.history_limit = 10_000

    def _clamp(self, value: float) -> float:
        if self.minimum is not None:
            value = max(self.minimum, value)
        if self.maximum is not None:
            value = min(self.maximum, value)
        return value

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float, at: float | None = None) -> None:
        old_level = self._level
        self._value = value = self._clamp(value)
        new_level = self.level_names[bisect_right(self.thresholds, value)]
        self._level = new_level
        if at is not None:
            self.history.append((at, value))
            if len(self.history) > self.history_limit:
                # keep the most recent half; O(1) amortized
                del self.history[: self.history_limit // 2]
        if new_level != old_level:
            self._notify()

    def add(self, delta: float, at: float | None = None) -> None:
        self.set(self._value + delta, at=at)

    @property
    def level(self) -> str:
        return self._level

    def levels(self) -> tuple[str, ...]:
        return self.level_names

    def __repr__(self) -> str:
        return f"ContinuousVariable({self.name}={self._value:.3f} [{self.level}])"


def snapshot(variables: dict[str, EnvironmentVariable]) -> dict[str, Any]:
    """A plain dict of variable name -> level, for state construction."""
    return {name: var.level for name, var in variables.items()}
