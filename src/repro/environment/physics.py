"""Coupling processes: how device actuation moves the physical world.

Each :class:`Process` reads the environment's *actuation inputs* (set by
device models: heater wattage, bulb lumens, oven state) and integrates one
or more variables forward.  The dynamics are deliberately simple first-order
models -- the experiments need the *coupling structure* (plug -> heat ->
temperature -> window rule), not HVAC-grade fidelity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.environment.engine import Environment


class Process:
    """Base class: integrate some variables forward by ``dt`` seconds."""

    def step(self, env: "Environment", dt: float) -> None:
        raise NotImplementedError


class ThermalProcess(Process):
    """First-order room thermal model.

    ``dT/dt = (inputs.heat_watts * gain) - leak * (T - T_outside)``

    An open window multiplies the leak term: that is precisely the physical
    side-channel in the paper's break-in scenario (turn off the AC, the
    room warms, the window-opening rule fires).
    """

    def __init__(
        self,
        variable: str = "temperature",
        outside: float = 10.0,
        heat_gain: float = 0.00004,    # degC per joule-ish
        leak_rate: float = 0.002,      # 1/s toward outside
        window_variable: str | None = "window",
        window_open_level: str = "open",
        window_leak_multiplier: float = 20.0,
        heat_input: str = "heat_watts",
        cool_input: str = "cool_watts",
    ) -> None:
        self.variable = variable
        self.outside = outside
        self.heat_gain = heat_gain
        self.leak_rate = leak_rate
        self.window_variable = window_variable
        self.window_open_level = window_open_level
        self.window_leak_multiplier = window_leak_multiplier
        self.heat_input = heat_input
        self.cool_input = cool_input

    def step(self, env: "Environment", dt: float) -> None:
        temp = env.continuous(self.variable)
        heat = env.inputs.get(self.heat_input, 0.0)
        cool = env.inputs.get(self.cool_input, 0.0)
        leak = self.leak_rate
        if self.window_variable and self.window_variable in env.variables:
            if env.variables[self.window_variable].level == self.window_open_level:
                leak *= self.window_leak_multiplier
        delta = (heat - cool) * self.heat_gain * dt
        delta -= leak * (temp.value - self.outside) * dt
        temp.add(delta, at=env.now)


class LightProcess(Process):
    """Illuminance follows lamp output plus a day/night ambient baseline."""

    def __init__(
        self,
        variable: str = "illuminance",
        ambient_input: str = "ambient_lux",
        lamp_input: str = "lamp_lux",
        settle_rate: float = 2.0,  # 1/s; light settles fast
    ) -> None:
        self.variable = variable
        self.ambient_input = ambient_input
        self.lamp_input = lamp_input
        self.settle_rate = settle_rate

    def step(self, env: "Environment", dt: float) -> None:
        lux = env.continuous(self.variable)
        target = env.inputs.get(self.ambient_input, 0.0) + env.inputs.get(
            self.lamp_input, 0.0
        )
        # Exponential approach, clamped to a stable step.
        alpha = min(1.0, self.settle_rate * dt)
        lux.set(lux.value + alpha * (target - lux.value), at=env.now)


class SmokeProcess(Process):
    """Smoke accumulates while a hazard source runs and decays otherwise.

    The Fig. 5 scenario's danger: an unattended oven (powered through a
    compromised smart plug) is a fire hazard.  ``hazard_input`` is the
    aggregate hazard intensity devices report (oven on = 1.0).
    """

    def __init__(
        self,
        variable: str = "smoke",
        hazard_input: str = "hazard",
        accumulation_rate: float = 0.02,  # units/s at hazard=1
        decay_rate: float = 0.01,
    ) -> None:
        self.variable = variable
        self.hazard_input = hazard_input
        self.accumulation_rate = accumulation_rate
        self.decay_rate = decay_rate

    def step(self, env: "Environment", dt: float) -> None:
        smoke = env.continuous(self.variable)
        hazard = env.inputs.get(self.hazard_input, 0.0)
        delta = hazard * self.accumulation_rate * dt
        delta -= self.decay_rate * smoke.value * dt
        smoke.add(delta, at=env.now)


class PowerProcess(Process):
    """Aggregate electrical draw: what the smart meter sees.

    Sums the wattage-bearing actuation inputs into a ``power_draw``
    variable.  The section 1 smart-meter fraud ("smart meters were hacked
    to lower utility bills") is detectable as a mismatch between this
    ground-truth draw and what a tampered meter reports.
    """

    def __init__(
        self,
        variable: str = "power_draw",
        watt_inputs: tuple[str, ...] = ("heat_watts", "cool_watts", "lamp_watts"),
        settle_rate: float = 5.0,
    ) -> None:
        self.variable = variable
        self.watt_inputs = watt_inputs
        self.settle_rate = settle_rate

    def step(self, env: "Environment", dt: float) -> None:
        draw = env.continuous(self.variable)
        target = sum(env.inputs.get(key, 0.0) for key in self.watt_inputs)
        alpha = min(1.0, self.settle_rate * dt)
        draw.set(draw.value + alpha * (target - draw.value), at=env.now)


class OccupancySchedule(Process):
    """Scripted occupancy: a list of ``(time, level)`` changes.

    Occupancy is the canonical *context* variable: "a thermostat controlling
    the HVAC system is normal if the user is present and anomalous
    otherwise" (section 3.1).
    """

    def __init__(
        self,
        schedule: Sequence[tuple[float, str]],
        variable: str = "occupancy",
    ) -> None:
        self.schedule = sorted(schedule)
        self.variable = variable
        self._applied = 0

    def step(self, env: "Environment", dt: float) -> None:
        var = env.variables[self.variable]
        while self._applied < len(self.schedule) and self.schedule[self._applied][0] <= env.now:
            __, level = self.schedule[self._applied]
            var.set(level)  # type: ignore[attr-defined]
            self._applied += 1
