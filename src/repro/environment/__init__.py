"""Physical-environment simulation.

IoT devices "can also be coupled through the physical environment leading to
implicit dependencies" (paper section 2.1): a smart plug that powers a
heater changes the temperature, which trips a temperature-sensor-driven
IFTTT rule that opens a window.  This package provides:

- :mod:`repro.environment.variables` -- typed environment variables with
  discretization into policy-level states (Temperature=High/Low etc.).
- :mod:`repro.environment.physics` -- coupling processes (thermal, light,
  smoke, occupancy) that evolve variables from device actuation inputs.
- :mod:`repro.environment.engine` -- the stepping engine and observation API.
"""

from repro.environment.engine import Environment
from repro.environment.physics import (
    LightProcess,
    OccupancySchedule,
    PowerProcess,
    Process,
    SmokeProcess,
    ThermalProcess,
)
from repro.environment.variables import (
    ContinuousVariable,
    DiscreteVariable,
    EnvironmentVariable,
)

__all__ = [
    "ContinuousVariable",
    "DiscreteVariable",
    "Environment",
    "EnvironmentVariable",
    "LightProcess",
    "OccupancySchedule",
    "PowerProcess",
    "Process",
    "SmokeProcess",
    "ThermalProcess",
]
