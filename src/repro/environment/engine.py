"""The environment engine.

One :class:`Environment` per deployment.  Devices contribute *actuation
inputs* (``set_input``) and read variables through sensors; processes
integrate the variables forward on a fixed tick driven by the shared
simulator.  Policy-level observers subscribe to level changes.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.environment.physics import Process
from repro.environment.variables import (
    ContinuousVariable,
    DiscreteVariable,
    EnvironmentVariable,
    snapshot,
)
from repro.netsim.simulator import Simulator


class Environment:
    """A set of variables plus the processes that evolve them."""

    def __init__(self, sim: Simulator, tick: float = 1.0) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        self.sim = sim
        self.tick = tick
        self.variables: dict[str, EnvironmentVariable] = {}
        self.processes: list[Process] = []
        self.inputs: dict[str, float] = {}
        self._input_contributions: dict[str, dict[str, float]] = {}
        self._level_observers: list[Callable[[str, str], None]] = []
        self._ticker_stop: Callable[[], None] | None = None

    @property
    def now(self) -> float:
        return self.sim.now

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_variable(self, variable: EnvironmentVariable) -> EnvironmentVariable:
        if variable.name in self.variables:
            raise ValueError(f"duplicate variable {variable.name!r}")
        self.variables[variable.name] = variable
        variable.observe(self._on_level_change)
        return variable

    def add_continuous(self, name: str, **kwargs: object) -> ContinuousVariable:
        var = ContinuousVariable(name, **kwargs)  # type: ignore[arg-type]
        self.add_variable(var)
        return var

    def add_discrete(self, name: str, domain: Iterable[str], initial: str | None = None) -> DiscreteVariable:
        var = DiscreteVariable(name, tuple(domain), initial)
        self.add_variable(var)
        return var

    def continuous(self, name: str) -> ContinuousVariable:
        var = self.variables[name]
        if not isinstance(var, ContinuousVariable):
            raise TypeError(f"{name} is not continuous")
        return var

    def discrete(self, name: str) -> DiscreteVariable:
        var = self.variables[name]
        if not isinstance(var, DiscreteVariable):
            raise TypeError(f"{name} is not discrete")
        return var

    def level(self, name: str) -> str:
        return self.variables[name].level

    def snapshot(self) -> dict[str, str]:
        """All variables as name -> level (the policy's environment state)."""
        return snapshot(self.variables)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Actuation inputs (devices -> physics)
    # ------------------------------------------------------------------
    def set_input(self, key: str, value: float, source: str = "_default") -> None:
        """Set ``source``'s contribution to input ``key``.

        Contributions from distinct sources sum: two space heaters both add
        wattage.  A source overwrites its own previous contribution.
        """
        per_source = self._input_contributions.setdefault(key, {})
        per_source[source] = value
        self.inputs[key] = sum(per_source.values())

    def clear_input(self, key: str, source: str = "_default") -> None:
        per_source = self._input_contributions.get(key)
        if per_source is None:
            return
        per_source.pop(source, None)
        self.inputs[key] = sum(per_source.values())

    # ------------------------------------------------------------------
    # Processes and stepping
    # ------------------------------------------------------------------
    def add_process(self, process: Process) -> Process:
        self.processes.append(process)
        return process

    def start(self, until: float | None = None) -> None:
        """Begin ticking physics on the simulator clock."""
        if self._ticker_stop is not None:
            return
        self._ticker_stop = self.sim.every(self.tick, self._step, until=until)

    def stop(self) -> None:
        if self._ticker_stop is not None:
            self._ticker_stop()
            self._ticker_stop = None

    def _step(self) -> None:
        for process in self.processes:
            process.step(self, self.tick)

    def step_once(self, dt: float | None = None) -> None:
        """Advance physics by one tick without the scheduler (tests)."""
        for process in self.processes:
            process.step(self, dt if dt is not None else self.tick)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def on_level_change(self, callback: Callable[[str, str], None]) -> None:
        """Subscribe to ``(variable_name, new_level)`` events."""
        self._level_observers.append(callback)

    def _on_level_change(self, variable: EnvironmentVariable) -> None:
        for callback in list(self._level_observers):
            callback(variable.name, variable.level)

    def __repr__(self) -> str:
        return f"Environment({self.snapshot()!r})"
