"""Token-bucket rate limiting.

Brute-force login storms (Fig. 3's window password) and reflection bursts
both announce themselves volumetrically before any signature exists; a
per-source token bucket at the device's gateway caps them.  Buckets are
replenished in simulated time (computed lazily from the last refill stamp,
so no periodic events are needed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mboxes.base import Element, MboxContext, Verdict
from repro.netsim.packet import Packet


@dataclass
class _Bucket:
    tokens: float
    last_refill: float


class RateLimiter(Element):
    """Per-source token bucket over device-bound packets.

    ``rate`` tokens/second, ``burst`` bucket depth.  ``match_dport``
    narrows the limiter to one port (e.g. only the management interface),
    leaving other traffic -- telemetry, control from the hub -- unmetered.
    """

    name = "rate_limiter"

    def __init__(
        self,
        rate: float = 1.0,
        burst: float = 5.0,
        match_dport: int | None = None,
        exempt_sources: tuple[str, ...] = (),
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self.match_dport = match_dport
        self.exempt_sources = frozenset(exempt_sources)
        self.buckets: dict[str, _Bucket] = {}
        self.limited = 0

    def _bucket(self, source: str, now: float) -> _Bucket:
        bucket = self.buckets.get(source)
        if bucket is None:
            bucket = _Bucket(tokens=self.burst, last_refill=now)
            self.buckets[source] = bucket
            return bucket
        elapsed = now - bucket.last_refill
        bucket.tokens = min(self.burst, bucket.tokens + elapsed * self.rate)
        bucket.last_refill = now
        return bucket

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        if packet.meta.get("direction") != "to_device":
            return Verdict.PASS, packet
        if self.match_dport is not None and packet.dport != self.match_dport:
            return Verdict.PASS, packet
        if packet.src in self.exempt_sources:
            return Verdict.PASS, packet
        bucket = self._bucket(packet.src, ctx.now)
        if bucket.tokens >= 1.0:
            bucket.tokens -= 1.0
            return Verdict.PASS, packet
        self.limited += 1
        ctx.alert("rate-limited", src=packet.src, dport=packet.dport)
        return Verdict.DROP, packet

    def describe(self) -> str:
        port = f", dport={self.match_dport}" if self.match_dport is not None else ""
        return f"rate_limiter({self.rate}/s burst {self.burst}{port})"
