"""The signature IDS µmbox element (Snort stand-in).

Holds a live set of :class:`AttackSignature` rules (typically fed by the
crowdsourced repository subscription) and alerts -- optionally drops -- on
matches.  Per-signature hit counters give the benches their detection
numbers.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.learning.signatures import AttackSignature
from repro.mboxes.base import Element, MboxContext, Verdict
from repro.netsim.packet import Packet


class SignatureIDS(Element):
    """Rule-matching over the packets the µmbox sees."""

    name = "signature_ids"

    def __init__(
        self,
        signatures: Iterable[AttackSignature] = (),
        drop_on_match: bool = True,
        min_confidence: float = 0.0,
    ) -> None:
        self.signatures: dict[int, AttackSignature] = {}
        self.drop_on_match = drop_on_match
        self.min_confidence = min_confidence
        self.hits: Counter[int] = Counter()
        for signature in signatures:
            self.add_signature(signature)

    # ------------------------------------------------------------------
    # Rule management (live: the repository subscription calls these)
    # ------------------------------------------------------------------
    def add_signature(self, signature: AttackSignature) -> None:
        if signature.confidence >= self.min_confidence:
            self.signatures[signature.sig_id] = signature

    def remove_signature(self, sig_id: int) -> None:
        self.signatures.pop(sig_id, None)

    def rule_count(self) -> int:
        return len(self.signatures)

    # ------------------------------------------------------------------
    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        for signature in self.signatures.values():
            if signature.match.matches(packet):
                self.hits[signature.sig_id] += 1
                ctx.alert(
                    "signature-match",
                    sig_id=signature.sig_id,
                    flaw_class=signature.flaw_class,
                    recommended_posture=signature.recommended_posture,
                    src=packet.src,
                )
                if self.drop_on_match:
                    return Verdict.DROP, packet
        return Verdict.PASS, packet

    def describe(self) -> str:
        return f"signature_ids({len(self.signatures)} rules)"
