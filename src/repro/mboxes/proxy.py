"""The password proxy µmbox element (the paper's Fig. 4 use case).

"we use a µmbox (Ubuntu VM with a customized Squid proxy) to serve as a
gateway that interposes on all traffic to the camera.  By interposing on
traffic, the µmbox can enforce the use of a new administrator-chosen
password to access the camera's management interface."

The device still only accepts its hardcoded vendor credential (the user
"has no interface to delete" it), so the proxy translates: logins carrying
the administrator-chosen password are rewritten to the vendor credential
before reaching the device; logins carrying anything else -- including the
vendor default the attacker knows -- are dropped.  The flaw remains on the
device; it is simply unreachable.
"""

from __future__ import annotations

from repro.mboxes.base import Element, MboxContext, Verdict
from repro.netsim.packet import Packet


class PasswordProxy(Element):
    """Rewrites good logins, drops bad ones, on the management port."""

    name = "password_proxy"

    def __init__(
        self,
        new_password: str,
        device_username: str = "admin",
        device_password: str = "admin",
        new_username: str | None = None,
        mgmt_port: int = 80,
    ) -> None:
        if new_password == device_password:
            raise ValueError(
                "the administrator-chosen password must differ from the "
                "vendor credential, otherwise the proxy protects nothing"
            )
        self.new_password = new_password
        self.new_username = new_username if new_username is not None else device_username
        self.device_username = device_username
        self.device_password = device_password
        self.mgmt_port = mgmt_port
        self.rewritten = 0
        self.rejected = 0

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        if (
            packet.meta.get("direction") != "to_device"
            or packet.dport != self.mgmt_port
            or packet.payload.get("action") != "login"
        ):
            return Verdict.PASS, packet
        username = packet.payload.get("username")
        password = packet.payload.get("password")
        if username == self.new_username and password == self.new_password:
            rewritten = packet.copy()
            rewritten.payload["username"] = self.device_username
            rewritten.payload["password"] = self.device_password
            self.rewritten += 1
            return Verdict.PASS, rewritten
        self.rejected += 1
        ctx.alert(
            "login-rejected",
            src=packet.src,
            username=username,
            used_vendor_default=(
                username == self.device_username and password == self.device_password
            ),
        )
        return Verdict.DROP, packet

    def describe(self) -> str:
        return f"password_proxy(user={self.new_username!r})"
