"""µmboxes: micro network-security functions (paper section 5.2).

"Unlike traditional IT deployments with a single firewall/IDS for the
enterprise, we envision many micro-middleboxes (µmboxes), each ...
customized for a specific device type and ... rapidly instantiated and
frequently reconfigured."

- :mod:`repro.mboxes.base` -- the Click/TinyOS-like element pipeline and
  the µmbox host node that terminates tunnels.
- :mod:`repro.mboxes.elements` -- generic elements (command filter /
  whitelist, logger, telemetry tap).
- :mod:`repro.mboxes.proxy` -- the Fig. 4 password proxy.
- :mod:`repro.mboxes.ids` -- the Snort-like signature IDS.
- :mod:`repro.mboxes.firewall` -- the stateful firewall element.
- :mod:`repro.mboxes.ratelimit` -- token-bucket rate limiting.
- :mod:`repro.mboxes.dnsguard` -- open-resolver abuse protection.
- :mod:`repro.mboxes.manager` -- lifecycle: micro-VM boot/reconfigure cost
  model, pre-boot pooling, and the monolithic-middlebox baseline.
"""

from repro.mboxes.base import Alert, Element, Mbox, MboxContext, MboxHost, Verdict
from repro.mboxes.manager import MBOX_KINDS, MboxManager

__all__ = [
    "Alert",
    "Element",
    "MBOX_KINDS",
    "Mbox",
    "MboxContext",
    "MboxHost",
    "MboxManager",
    "Verdict",
]
