"""DNS-guard µmbox element (Table 1 row 6).

The Belkin Wemo "runs an open DNS resolver which was used to mount a DDoS
attack": any spoofed query bounces an amplified answer at the victim.  The
guard sits on the device path and drops resolver queries unless they come
from the device's own site (the resolver was only ever meant for the
vendor's local software), killing the reflection vector without touching
the firmware.
"""

from __future__ import annotations

from typing import Iterable

from repro.mboxes.base import Element, MboxContext, Verdict
from repro.netsim.packet import Packet

DNS_PORT = 53


class DnsGuard(Element):
    """Drop resolver queries from non-local sources; cap the rest."""

    name = "dns_guard"

    def __init__(
        self,
        local_sources: Iterable[str] = (),
        max_queries_per_second: float = 5.0,
    ) -> None:
        if max_queries_per_second <= 0:
            raise ValueError("max_queries_per_second must be positive")
        self.local_sources = frozenset(local_sources)
        self.max_qps = max_queries_per_second
        self.blocked = 0
        self._window_start = 0.0
        self._window_count = 0

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        if packet.meta.get("direction") != "to_device" or packet.dport != DNS_PORT:
            return Verdict.PASS, packet
        if packet.src not in self.local_sources:
            self.blocked += 1
            ctx.alert("dns-reflection-blocked", claimed_src=packet.src)
            return Verdict.DROP, packet
        # Local clients are rate-capped too: a compromised local host must
        # not turn the device into an amplifier either.
        if ctx.now - self._window_start >= 1.0:
            self._window_start = ctx.now
            self._window_count = 0
        self._window_count += 1
        if self._window_count > self.max_qps:
            self.blocked += 1
            ctx.alert("dns-rate-capped", src=packet.src)
            return Verdict.DROP, packet
        return Verdict.PASS, packet

    def describe(self) -> str:
        return f"dns_guard(local={sorted(self.local_sources)}, qps={self.max_qps})"
