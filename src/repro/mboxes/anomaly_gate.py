"""The anomaly-detection µmbox element.

Section 3.2's postures include "the set of anomaly detection ... rules
that need to be applied".  This element wraps the learning subsystem's
context-conditional :class:`BehaviorProfile` into the data plane:

- during the **training window** it observes device-bound commands and
  builds the profile (and never blocks);
- afterwards it scores each command against the profile, conditioned on a
  configured context key from the global view (occupancy by default, per
  the paper's "thermostat ... is normal if the user is present and
  anomalous otherwise" example);
- anomalous commands raise an alert and, in enforcing mode, are dropped.

This gives IoTSec a defence for attacks with *no signature and no flaw* --
a stolen session token replayed from a strange source at a strange time.
"""

from __future__ import annotations

from repro.learning.anomaly import BehaviorEvent, BehaviorProfile
from repro.mboxes.base import Element, MboxContext, Verdict
from repro.netsim.packet import Packet


class AnomalyGate(Element):
    """Profile-based command gating for one device."""

    name = "anomaly_gate"

    def __init__(
        self,
        device: str,
        training_window: float = 3600.0,
        context_key: str = "env:occupancy",
        threshold: float = 0.05,
        min_training: int = 10,
        enforce: bool = True,
    ) -> None:
        if training_window < 0:
            raise ValueError("training_window must be >= 0")
        self.device = device
        self.training_window = training_window
        self.context_key = context_key
        self.enforce = enforce
        self.profile = BehaviorProfile(
            device, threshold=threshold, min_training=min_training
        )
        self._started_at: float | None = None
        self.flagged = 0

    def _event(self, packet: Packet, ctx: MboxContext) -> BehaviorEvent:
        context_value = ctx.view(self.context_key) or "unknown"
        return BehaviorEvent(
            device=self.device,
            command=str(packet.payload.get("cmd")),
            source=packet.src,
            context=f"{self.context_key}={context_value}",
        )

    def in_training(self, now: float) -> bool:
        if self._started_at is None:
            return True
        return now - self._started_at < self.training_window

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        if packet.meta.get("direction") != "to_device" or "cmd" not in packet.payload:
            return Verdict.PASS, packet
        if self._started_at is None:
            self._started_at = ctx.now
        event = self._event(packet, ctx)
        if self.in_training(ctx.now):
            self.profile.observe(event)
            return Verdict.PASS, packet
        if self.profile.is_anomalous(event):
            self.flagged += 1
            ctx.alert(
                "anomalous-command",
                cmd=event.command,
                src=event.source,
                context=event.context,
                score=round(self.profile.score(event), 3),
            )
            if self.enforce:
                return Verdict.DROP, packet
        else:
            # normal events seen after training keep refining the profile
            self.profile.observe(event)
        return Verdict.PASS, packet

    def describe(self) -> str:
        mode = "enforce" if self.enforce else "alert-only"
        return (
            f"anomaly_gate({self.device}, ctx={self.context_key}, "
            f"train={self.training_window:.0f}s, {mode})"
        )
