"""The µmbox element pipeline and host.

Section 5.2 envisions "a lightweight Click version akin to TinyOS that can
serve as an extensible programming platform for developing these
micro-middleboxes".  Our equivalent: a µmbox is an ordered pipeline of
:class:`Element` objects; each element inspects (and may rewrite) the
packet, returns a verdict, and may raise :class:`Alert` records that flow
to the controller.

The :class:`MboxHost` is the cluster/IoT-router node that terminates the
switch tunnels, dispatches inner packets to the µmbox bound to the target
device, and returns surviving packets to the ingress switch.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.obs.journal import UNJOURNALED_ALERT_KINDS
from repro.sdn.tunnel import detunnel, is_tunnelled, tunnel_packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator

_ALERT_IDS = itertools.count(1)

#: Alert kinds that never start a causal trace: routine streams whose
#: volume would evict the interesting (security-relevant) traces from the
#: tracer's bounded retention.
UNTRACED_ALERT_KINDS = frozenset({"telemetry"})


class Verdict(enum.Enum):
    PASS = "pass"
    DROP = "drop"


@dataclass(slots=True)
class Alert:
    """A security event raised by an element."""

    at: float
    mbox: str
    device: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)
    #: Causal-trace id stamped at birth (see :mod:`repro.obs.trace`); rides
    #: the control channel so the controller continues the same trace.
    trace_id: int | None = None
    alert_id: int = field(default_factory=lambda: next(_ALERT_IDS))

    def __str__(self) -> str:
        return f"Alert#{self.alert_id}[{self.kind}] {self.device} via {self.mbox}: {self.detail}"


@dataclass(slots=True)
class MboxContext:
    """What an element can see beyond the packet itself.

    ``view`` is a read-only accessor into the controller's global state
    (``view("env:occupancy")`` -> level or None): this is how a µmbox
    enforces *context-dependent* policy (Fig. 5's "only if the camera sees
    a person").  ``emit_alert`` forwards events to the controller.
    """

    sim: "Simulator"
    mbox_name: str
    device: str
    view: Callable[[str], str | None]
    emit_alert: Callable[[Alert], None]
    #: The packet under inspection, when the host set one: lets the
    #: ``detect`` span measure packet-creation -> alert latency.
    packet: Packet | None = None

    @property
    def now(self) -> float:
        return self.sim.now

    def alert(self, kind: str, **detail: Any) -> Alert:
        trace_id: int | None = None
        if kind not in UNTRACED_ALERT_KINDS:
            tracer = self.sim.tracer
            trace_id = tracer.start_trace(device=self.device, kind=kind)
            if trace_id is not None:
                attrs: dict[str, Any] = {"kind": kind, "mbox": self.mbox_name}
                start = self.now
                if self.packet is not None:
                    start = self.packet.created_at
                    attrs["pkt"] = self.packet.pkt_id
                    attrs["src"] = self.packet.src
                tracer.span(trace_id, "detect", start, self.now, device=self.device, **attrs)
        alert = Alert(
            at=self.now,
            mbox=self.mbox_name,
            device=self.device,
            kind=kind,
            detail=detail,
            trace_id=trace_id,
        )
        if kind not in UNJOURNALED_ALERT_KINDS:
            # Flight recorder: the alert's birth is durable evidence even
            # after the trace ages out of the tracer's bounded retention.
            fields = {
                k: v
                for k, v in detail.items()
                if k not in ("device", "trace", "alert_kind", "mbox")
                and isinstance(v, (str, int, float, bool))
            }
            self.sim.journal.record(
                "alert",
                device=self.device,
                trace=trace_id,
                alert_kind=kind,
                mbox=self.mbox_name,
                **fields,
            )
        self.emit_alert(alert)
        return alert


class Element:
    """One stage of a µmbox pipeline.

    ``process`` returns ``(verdict, packet)``; the packet may be a
    rewritten copy (never mutate the input -- other elements or the caller
    may hold references).  Direction is available in
    ``packet.meta["direction"]`` (``"to_device"`` / ``"from_device"``).
    """

    name = "element"

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class Mbox:
    """A µmbox instance: a named pipeline bound to one device."""

    def __init__(
        self,
        name: str,
        device: str,
        elements: list[Element],
        kind: str = "custom",
        fail_mode: str = "closed",
    ) -> None:
        self.name = name
        self.device = device
        self.elements = list(elements)
        self.kind = kind
        self.processed = 0
        self.dropped = 0
        self.ready = True  # manager flips this during boot/reconfigure
        #: True while the instance is crashed (health checks restart it).
        #: Distinct from ``not ready``: a booting µmbox queues packets for
        #: later inspection; a *down* one degrades per ``fail_mode``.
        self.down = False
        #: Degradation policy while down: "closed" blocks the device's
        #: traffic (enforcement µmboxes), "open" passes it uninspected
        #: (pure monitoring).  Set from the posture at deploy time.
        self.fail_mode = fail_mode

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        self.processed += 1
        current = packet
        for element in self.elements:
            verdict, current = element.process(current, ctx)
            if verdict is Verdict.DROP:
                self.dropped += 1
                # Journal the security verdict: which element of which
                # µmbox refused which packet.  PASS verdicts are routine
                # traffic and are deliberately not journaled (volume).
                ctx.sim.journal.record(
                    "verdict",
                    device=self.device,
                    verdict="drop",
                    mbox=self.name,
                    element=element.name,
                    pkt=current.pkt_id,
                    src=current.src,
                    dport=current.dport,
                )
                return Verdict.DROP, current
        return Verdict.PASS, current

    def reconfigure(self, elements: list[Element]) -> None:
        self.elements = list(elements)

    def describe(self) -> str:
        chain = " -> ".join(e.describe() for e in self.elements) or "allow"
        return f"{self.name}[{self.kind}] for {self.device}: {chain}"


class MboxHost(Node):
    """The security-cluster node: terminates tunnels, runs µmboxes.

    Packets for devices with no bound µmbox (or one still booting with a
    full queue) follow ``default_verdict`` -- fail-closed (DROP) by
    default, because an unprotected vulnerable device is the thing we are
    here to prevent.
    """

    def __init__(
        self,
        name: str,
        sim: "Simulator",
        view: Callable[[str], str | None] | None = None,
        alert_sink: Callable[[Alert], None] | None = None,
        default_verdict: Verdict = Verdict.DROP,
        boot_queue_limit: int = 64,
        processing_latency: float = 0.0,
    ) -> None:
        super().__init__(name, sim)
        if processing_latency < 0:
            raise ValueError("processing_latency must be >= 0")
        self.processing_latency = processing_latency
        self.mboxes: dict[str, Mbox] = {}          # device -> mbox
        self.view = view or (lambda key: None)
        self.alert_sink = alert_sink or (lambda alert: None)
        self.default_verdict = default_verdict
        self.boot_queue_limit = boot_queue_limit
        self._boot_queues: dict[str, list[tuple[Packet, int]]] = {}
        self.alerts: list[Alert] = []
        self.tunnelled_in = 0
        self.returned = 0
        self.unbound_drops = 0
        self.down_drops = 0
        self.fail_open_passes = 0
        #: Controller backpressure (alert-storm shedding): while active,
        #: only one in ``backpressure_sample`` telemetry alerts is
        #: forwarded upstream -- the rest are recorded locally and counted.
        self.backpressure = False
        self.backpressure_sample = 8
        self.telemetry_suppressed = 0
        self._telemetry_seen = 0
        #: Per-device counts sampled away in the *current* backpressure
        #: window; journaled (kind ``telemetry-elided``) when the window
        #: closes so incident timelines can say "N records elided here".
        self._suppressed_window: dict[str, int] = {}
        self._window_started = 0.0
        #: Optional durable store-and-forward stream
        #: (:class:`repro.obs.stream.HostStream`).  While attached, shed
        #: mode *defers* telemetry into the buffer instead of sampling it
        #: away, so local sampling is skipped entirely.
        self.stream = None
        # Observability: callback gauges over the counters above, plus
        # per-kind alert counters (resolved lazily, cached by kind).
        metrics = sim.metrics
        self.metric_labels = {"host": metrics.unique(name)}
        metrics.gauge("mbox_tunnelled_in", fn=lambda: self.tunnelled_in, **self.metric_labels)
        metrics.gauge("mbox_returned", fn=lambda: self.returned, **self.metric_labels)
        metrics.gauge("mbox_unbound_drops", fn=lambda: self.unbound_drops, **self.metric_labels)
        metrics.gauge("mbox_down_drops", fn=lambda: self.down_drops, **self.metric_labels)
        metrics.gauge(
            "mbox_fail_open_passes", fn=lambda: self.fail_open_passes, **self.metric_labels
        )
        metrics.gauge(
            "mbox_boot_queue_depth",
            fn=lambda: sum(len(q) for q in self._boot_queues.values()),
            **self.metric_labels,
        )
        self._alert_counters: dict[str, Any] = {}
        # Zero-latency inspection reuses one context per device (only
        # ``packet`` varies); a delayed inspection gets a fresh context so
        # an in-flight one never sees a later packet.
        self._ctx_cache: dict[str, MboxContext] = {}

    # ------------------------------------------------------------------
    # Binding (the manager/orchestrator calls these)
    # ------------------------------------------------------------------
    def bind(self, device: str, mbox: Mbox) -> None:
        self.mboxes[device] = mbox
        if mbox.ready:
            self._drain_boot_queue(device)

    def unbind(self, device: str) -> None:
        self.mboxes.pop(device, None)
        self._boot_queues.pop(device, None)

    def mark_ready(self, device: str) -> None:
        mbox = self.mboxes.get(device)
        if mbox is not None:
            mbox.ready = True
            self._drain_boot_queue(device)

    def _drain_boot_queue(self, device: str) -> None:
        for packet, in_port in self._boot_queues.pop(device, []):
            self._process_inner(packet, in_port)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet, in_port: int) -> None:
        if not is_tunnelled(packet):
            return  # the cluster only speaks tunnel
        self.tunnelled_in += 1
        self._process_inner(packet, in_port)

    def _process_inner(self, outer: Packet, in_port: int) -> None:
        inner, ingress = detunnel(outer)
        device = outer.payload.get("target", "")
        mbox = self.mboxes.get(device)
        if mbox is None:
            if self.default_verdict is Verdict.PASS:
                self._return_packet(inner, ingress, device, in_port)
            else:
                self.unbound_drops += 1
                self.sim.journal.record(
                    "verdict",
                    device=device,
                    verdict="drop",
                    mbox=self.name,
                    element="(unbound)",
                    pkt=inner.pkt_id,
                    src=inner.src,
                )
            return
        if mbox.down:
            # Degradation policy: a crashed enforcement µmbox fails closed
            # (the device blocks -- unprotected is worse than unreachable);
            # a crashed monitoring µmbox fails open (losing visibility is
            # acceptable, losing connectivity is not).
            if mbox.fail_mode == "open":
                self.fail_open_passes += 1
                self.sim.journal.record(
                    "fail-open",
                    device=device,
                    mbox=mbox.name,
                    pkt=inner.pkt_id,
                    src=inner.src,
                )
                self._return_packet(inner, ingress, device, in_port)
            else:
                self.down_drops += 1
                self.sim.journal.record(
                    "verdict",
                    device=device,
                    verdict="drop",
                    mbox=mbox.name,
                    element="(mbox-down)",
                    pkt=inner.pkt_id,
                    src=inner.src,
                )
            return
        if not mbox.ready:
            queue = self._boot_queues.setdefault(device, [])
            if len(queue) < self.boot_queue_limit:
                queue.append((outer, in_port))
            else:
                self.unbound_drops += 1
                self.sim.journal.record(
                    "verdict",
                    device=device,
                    verdict="drop",
                    mbox=self.name,
                    element="(boot-queue-full)",
                    pkt=inner.pkt_id,
                    src=inner.src,
                )
            return
        direction = "to_device" if inner.dst == device else "from_device"
        copied = inner.copy()
        copied.meta["direction"] = direction

        if self.processing_latency > 0:
            # Model the µmbox's per-packet compute cost ("lightweight and
            # not ... high traffic rates", section 5.2) in simulated time.
            # Fresh context: it must still hold *this* packet when the
            # delayed inspection fires.
            ctx = MboxContext(
                sim=self.sim,
                mbox_name=mbox.name,
                device=device,
                view=self.view,
                emit_alert=self._on_alert,
                packet=copied,
            )
            self.sim.schedule(
                self.processing_latency, self._inspect, mbox, copied, ctx, ingress, device, in_port
            )
        else:
            ctx = self._ctx_cache.get(device)
            if ctx is None or ctx.mbox_name != mbox.name:
                ctx = MboxContext(
                    sim=self.sim,
                    mbox_name=mbox.name,
                    device=device,
                    view=self.view,
                    emit_alert=self._on_alert,
                )
                self._ctx_cache[device] = ctx
            ctx.packet = copied
            self._inspect(mbox, copied, ctx, ingress, device, in_port)

    def _inspect(
        self,
        mbox: "Mbox",
        packet: Packet,
        ctx: MboxContext,
        ingress: str,
        device: str,
        in_port: int,
    ) -> None:
        verdict, result = mbox.process(packet, ctx)
        if verdict is Verdict.PASS:
            self._return_packet(result, ingress, device, in_port)

    def _return_packet(self, inner: Packet, ingress: str, device: str, in_port: int) -> None:
        """Send the surviving packet back to the ingress switch, marked as
        already-inspected so the switch's bypass rule forwards it."""
        self.returned += 1
        inspected = list(inner.meta.get("inspected_devices", []))
        if device not in inspected:
            inspected.append(device)
        inner.meta["inspected_devices"] = inspected
        outer = tunnel_packet(inner, ingress=self.name, target=device)
        outer.dst = ingress
        outer.payload["inspected"] = True
        self.send(outer, in_port)

    def attach_stream(self, stream) -> None:
        """Install a durable store-and-forward stream for this host's alerts."""
        self.stream = stream

    def set_backpressure(self, active: bool) -> None:
        """Controller shed-mode signal: sample telemetry locally while on.

        Each window's per-device sampled-away counts are journaled when
        the pressure releases (kind ``telemetry-elided``), so a forensic
        timeline states "N records elided here" instead of showing a
        silent gap.  (Counts from a window still open at inspection time
        are in ``_suppressed_window`` / the ``telemetry_suppressed``
        counter.)
        """
        if active and not self.backpressure:
            self._window_started = self.sim.now
            self._suppressed_window = {}
        elif not active and self.backpressure:
            for device in sorted(self._suppressed_window):
                self.sim.journal.record(
                    "telemetry-elided",
                    device=device,
                    mbox=self.name,
                    count=self._suppressed_window[device],
                    since=self._window_started,
                )
            self._suppressed_window = {}
        self.backpressure = active
        self.sim.journal.record(
            "backpressure", mbox=self.name, active=active
        )

    def _on_alert(self, alert: Alert) -> None:
        self.alerts.append(alert)
        counter = self._alert_counters.get(alert.kind)
        if counter is None:
            counter = self.sim.metrics.counter(
                "mbox_alerts", kind=alert.kind, **self.metric_labels
            )
            self._alert_counters[alert.kind] = counter
        counter.inc()
        if self.backpressure and alert.kind == "telemetry" and self.stream is None:
            # Shedding controller: coalesce at the source.  Security alerts
            # always go upstream; telemetry is sampled 1-in-N until the
            # controller releases the pressure.  (With a durable stream
            # attached, nothing is sampled away: the consumer defers bulk
            # records into the buffer instead, and they replay later.)
            self._telemetry_seen += 1
            if self._telemetry_seen % self.backpressure_sample != 1:
                self.telemetry_suppressed += 1
                self._suppressed_window[alert.device] = (
                    self._suppressed_window.get(alert.device, 0) + 1
                )
                return
        self.alert_sink(alert)

    # ------------------------------------------------------------------
    def alerts_for(self, device: str) -> list[Alert]:
        return [a for a in self.alerts if a.device == device]
