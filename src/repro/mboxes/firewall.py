"""The stateful-firewall µmbox element.

Default-deny toward the device with three admission paths:

1. the source is explicitly trusted (the hub, the owner's phone, the
   controller);
2. the packet is a reply to a connection the *device* initiated (classic
   stateful semantics, via :class:`ConnectionTracker`);
3. the port is explicitly opened (e.g. the management port when a
   password proxy guards it further down the pipeline).

This single element neutralizes the whole "exposed access"/"backdoor"
family of Table 1: the backdoor port is simply never in ``open_ports``.
"""

from __future__ import annotations

from typing import Iterable

from repro.mboxes.base import Element, MboxContext, Verdict
from repro.netsim.packet import Packet
from repro.policy.acl import ConnectionTracker


class StatefulFirewall(Element):
    """Default-deny inbound with connection tracking."""

    name = "stateful_firewall"

    def __init__(
        self,
        trusted_sources: Iterable[str] = (),
        open_ports: Iterable[int] = (),
        default: str = "drop",
    ) -> None:
        if default not in ("drop", "pass"):
            raise ValueError(f"default must be drop or pass, got {default!r}")
        self.trusted_sources = frozenset(trusted_sources)
        self.open_ports = frozenset(open_ports)
        self.default = default
        self.tracker = ConnectionTracker()
        self.blocked = 0

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        direction = packet.meta.get("direction")
        if direction == "from_device":
            # Outbound traffic establishes state for replies.
            self.tracker.note_outbound(packet)
            return Verdict.PASS, packet
        if packet.src in self.trusted_sources:
            return Verdict.PASS, packet
        if packet.dport in self.open_ports:
            return Verdict.PASS, packet
        if self.tracker.is_reply(packet):
            return Verdict.PASS, packet
        if self.default == "pass":
            return Verdict.PASS, packet
        self.blocked += 1
        ctx.alert("firewall-blocked", src=packet.src, dport=packet.dport)
        return Verdict.DROP, packet

    def describe(self) -> str:
        return (
            f"stateful_firewall(trusted={sorted(self.trusted_sources)}, "
            f"open={sorted(self.open_ports)}, default={self.default})"
        )
