"""Generic µmbox pipeline elements.

The small reusable stages: command filtering (the Fig. 3 "Block 'open'"
posture), command whitelisting (Table 1 row 5's traffic lights), context
gates (the Fig. 5 occupancy condition), logging, and telemetry tapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.mboxes.base import Element, MboxContext, Verdict
from repro.netsim.packet import Packet


class CommandFilter(Element):
    """Drop control packets whose command is on the deny list."""

    name = "command_filter"

    def __init__(self, deny: Iterable[str]) -> None:
        self.deny = frozenset(deny)

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        cmd = packet.payload.get("cmd")
        if (
            packet.meta.get("direction") == "to_device"
            and cmd is not None
            and cmd in self.deny
        ):
            ctx.alert("command-blocked", cmd=cmd, src=packet.src)
            return Verdict.DROP, packet
        return Verdict.PASS, packet

    def describe(self) -> str:
        return f"command_filter(deny={sorted(self.deny)})"


class CommandWhitelist(Element):
    """Drop control packets whose command is NOT on the allow list.

    Non-command traffic passes (telemetry, replies); the whitelist guards
    the actuator surface only.
    """

    name = "command_whitelist"

    def __init__(self, allow: Iterable[str], allowed_sources: Iterable[str] = ()) -> None:
        self.allow = frozenset(allow)
        self.allowed_sources = frozenset(allowed_sources)

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        cmd = packet.payload.get("cmd")
        if packet.meta.get("direction") != "to_device" or cmd is None:
            return Verdict.PASS, packet
        if packet.src in self.allowed_sources:
            return Verdict.PASS, packet
        if cmd not in self.allow:
            ctx.alert("command-not-whitelisted", cmd=cmd, src=packet.src)
            return Verdict.DROP, packet
        return Verdict.PASS, packet

    def describe(self) -> str:
        return f"command_whitelist(allow={sorted(self.allow)})"


class ContextGate(Element):
    """Pass a guarded command only while a global-view condition holds.

    Fig. 5's policy is ``ContextGate(commands={"on"},
    require={"env:occupancy": "present"})`` on the Wemo's µmbox: the "ON"
    message flows "only if the global state identifies a person in the
    room".  Unknown context (view returns None) fails closed.
    """

    name = "context_gate"

    def __init__(self, commands: Iterable[str], require: dict[str, str]) -> None:
        self.commands = frozenset(commands)
        self.require = dict(require)

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        cmd = packet.payload.get("cmd")
        if packet.meta.get("direction") != "to_device" or cmd not in self.commands:
            return Verdict.PASS, packet
        for key, wanted in self.require.items():
            actual = ctx.view(key)
            if actual != wanted:
                ctx.alert(
                    "context-gate-blocked",
                    cmd=cmd,
                    src=packet.src,
                    condition=f"{key}={wanted}",
                    actual=actual,
                )
                return Verdict.DROP, packet
        return Verdict.PASS, packet

    def describe(self) -> str:
        conds = ", ".join(f"{k}={v}" for k, v in sorted(self.require.items()))
        return f"context_gate({sorted(self.commands)} requires {conds})"


class SourceFilter(Element):
    """Allow device-bound traffic only from an approved set of sources."""

    name = "source_filter"

    def __init__(self, allowed_sources: Iterable[str]) -> None:
        self.allowed_sources = frozenset(allowed_sources)

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        if packet.meta.get("direction") != "to_device":
            return Verdict.PASS, packet
        if packet.src not in self.allowed_sources:
            ctx.alert("unapproved-source", src=packet.src, dport=packet.dport)
            return Verdict.DROP, packet
        return Verdict.PASS, packet

    def describe(self) -> str:
        return f"source_filter(allow={sorted(self.allowed_sources)})"


@dataclass(slots=True)
class LoggedPacket:
    at: float
    direction: str
    src: str
    dst: str
    dport: int
    cmd: str | None
    size: int


class PacketLogger(Element):
    """Record traffic metadata (the raw material for anomaly profiles).

    With ``capture=True`` it also retains full packet copies (bounded by
    ``capture_limit``) -- the forensic capture a victim site mines
    signatures from after an incident (:mod:`repro.learning.traceminer`).
    """

    name = "packet_logger"

    def __init__(self, capture: bool = False, capture_limit: int = 1000) -> None:
        self.log: list[LoggedPacket] = []
        self.capture = capture
        self.capture_limit = capture_limit
        self.captured: list[Packet] = []

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        self.log.append(
            LoggedPacket(
                at=ctx.now,
                direction=str(packet.meta.get("direction", "")),
                src=packet.src,
                dst=packet.dst,
                dport=packet.dport,
                cmd=packet.payload.get("cmd"),
                size=packet.size,
            )
        )
        if self.capture and len(self.captured) < self.capture_limit:
            self.captured.append(packet.copy())
            if len(self.captured) == self.capture_limit:
                # Evidence gap from here on: auditors must know the capture
                # stopped, or absence of packets reads as absence of traffic.
                ctx.sim.journal.record(
                    "capture-saturated",
                    device=ctx.device,
                    mbox=ctx.mbox_name,
                    limit=self.capture_limit,
                )
        return Verdict.PASS, packet

    def captured_from(self, src: str) -> list[Packet]:
        return [p for p in self.captured if p.src == src]


class TelemetryTap(Element):
    """Mirror device telemetry into the controller's global view.

    The controller learns device state and sensor readings from the traffic
    the µmbox already sees -- no device cooperation needed.
    """

    name = "telemetry_tap"

    def __init__(self) -> None:
        self.reports = 0

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        if (
            packet.meta.get("direction") == "from_device"
            and packet.payload.get("action") == "telemetry"
        ):
            self.reports += 1
            ctx.alert(
                "telemetry",
                state=packet.payload.get("state"),
                readings=dict(packet.payload.get("readings", {})),
            )
        return Verdict.PASS, packet


class LoginMonitor(Element):
    """Alert on every management-login attempt toward the device.

    The controller's escalation rules turn a storm of these into a
    *suspicious* context (Fig. 3's "Window password brute-forced"
    transition); a single attempt from the owner stays under threshold.
    """

    name = "login_monitor"

    def __init__(self, mgmt_port: int = 80) -> None:
        self.mgmt_port = mgmt_port
        self.attempts = 0

    def process(self, packet: Packet, ctx: MboxContext) -> tuple[Verdict, Packet]:
        if (
            packet.meta.get("direction") == "to_device"
            and packet.dport == self.mgmt_port
            and packet.payload.get("action") == "login"
        ):
            self.attempts += 1
            ctx.alert(
                "login-attempt",
                src=packet.src,
                username=packet.payload.get("username"),
            )
        return Verdict.PASS, packet


@dataclass
class ElementChainStats:
    """Aggregated pipeline statistics (used by the agility bench)."""

    elements: int = 0
    passes: int = 0
    drops: int = 0
    rewrites: int = 0
    per_element: dict[str, int] = field(default_factory=dict)
