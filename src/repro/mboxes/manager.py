"""µmbox lifecycle: instantiation, reconfiguration, pooling.

Section 5.2's two data-plane challenges:

1. *Resource management* -- "the actual computation that each
   micro-middlebox performs will be lightweight ... we can create custom
   micro VMs that can be rapidly booted/rebooted".  The manager models a
   ClickOS-like cost structure: cold-boot a micro-VM in ~30 ms, attach a
   pre-booted pooled VM in ~1 ms, reconfigure a live pipeline in ~5 ms
   **without downtime** ("µmboxes must support frequent reconfigurations
   without impacting the availability of IoT devices").

2. *Programming abstractions* -- postures carry declarative
   :class:`MboxSpec` entries; the :data:`MBOX_KINDS` registry materializes
   them into element pipelines.

:class:`MonolithicMiddlebox` is the comparison arm for bench E7: one
enterprise-style appliance whose every policy change is a multi-second
restart during which *all* devices lose protection.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.learning.signatures import AttackSignature
from repro.mboxes.base import Element, Mbox, MboxHost
from repro.mboxes.dnsguard import DnsGuard
from repro.mboxes.elements import (
    CommandFilter,
    CommandWhitelist,
    ContextGate,
    LoginMonitor,
    PacketLogger,
    SourceFilter,
    TelemetryTap,
)
from repro.mboxes.firewall import StatefulFirewall
from repro.mboxes.ids import SignatureIDS
from repro.mboxes.proxy import PasswordProxy
from repro.mboxes.ratelimit import RateLimiter
from repro.policy.posture import MboxSpec, Posture

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator

SignatureProvider = Callable[[str], list[AttackSignature]]


def _build_element(
    spec: MboxSpec, signature_provider: SignatureProvider | None
) -> Element:
    config: dict[str, Any] = spec.config_dict()
    kind = spec.kind
    if kind == "password_proxy":
        return PasswordProxy(
            new_password=str(config["new_password"]),
            device_username=str(config.get("device_username", "admin")),
            device_password=str(config.get("device_password", "admin")),
            new_username=config.get("new_username"),
            mgmt_port=int(config.get("mgmt_port", 80)),
        )
    if kind == "signature_ids":
        signatures: list[AttackSignature] = []
        sku = config.get("sku")
        if sku and signature_provider is not None:
            signatures = signature_provider(str(sku))
        return SignatureIDS(
            signatures=signatures,
            drop_on_match=bool(config.get("drop_on_match", True)),
            min_confidence=float(config.get("min_confidence", 0.0)),
        )
    if kind == "stateful_firewall":
        return StatefulFirewall(
            trusted_sources=config.get("trusted_sources", ()),
            open_ports=config.get("open_ports", ()),
            default=str(config.get("default", "drop")),
        )
    if kind == "command_filter":
        return CommandFilter(deny=config.get("deny", ()))
    if kind == "command_whitelist":
        return CommandWhitelist(
            allow=config.get("allow", ()),
            allowed_sources=config.get("allowed_sources", ()),
        )
    if kind == "context_gate":
        return ContextGate(
            commands=config.get("commands", ()),
            require=dict(config.get("require", {})),
        )
    if kind == "source_filter":
        return SourceFilter(allowed_sources=config.get("allowed_sources", ()))
    if kind == "rate_limiter":
        return RateLimiter(
            rate=float(config.get("rate", 1.0)),
            burst=float(config.get("burst", 5.0)),
            match_dport=config.get("match_dport"),
            exempt_sources=tuple(config.get("exempt_sources", ())),
        )
    if kind == "dns_guard":
        return DnsGuard(
            local_sources=config.get("local_sources", ()),
            max_queries_per_second=float(config.get("max_queries_per_second", 5.0)),
        )
    if kind == "telemetry_tap":
        return TelemetryTap()
    if kind == "packet_logger":
        return PacketLogger(
            capture=bool(config.get("capture", False)),
            capture_limit=int(config.get("capture_limit", 1000)),
        )
    if kind == "login_monitor":
        return LoginMonitor(mgmt_port=int(config.get("mgmt_port", 80)))
    if kind == "anomaly_gate":
        from repro.mboxes.anomaly_gate import AnomalyGate

        return AnomalyGate(
            device=str(config.get("device", "")),
            training_window=float(config.get("training_window", 3600.0)),
            context_key=str(config.get("context_key", "env:occupancy")),
            threshold=float(config.get("threshold", 0.05)),
            min_training=int(config.get("min_training", 10)),
            enforce=bool(config.get("enforce", True)),
        )
    raise KeyError(f"unknown µmbox element kind {kind!r}")


#: The registry of element kinds a posture may reference.
MBOX_KINDS: tuple[str, ...] = (
    "password_proxy",
    "signature_ids",
    "stateful_firewall",
    "command_filter",
    "command_whitelist",
    "context_gate",
    "source_filter",
    "rate_limiter",
    "dns_guard",
    "telemetry_tap",
    "packet_logger",
    "login_monitor",
    "anomaly_gate",
)


@dataclass
class DeploymentRecord:
    """One lifecycle operation, with its latency, for bench E7."""

    device: str
    posture: str
    operation: str  # "boot" | "pool" | "reconfigure" | "teardown"
    requested_at: float
    ready_at: float

    @property
    def latency(self) -> float:
        return self.ready_at - self.requested_at


@dataclass
class OutageRecord:
    """One µmbox crash -> detection -> restart cycle.

    ``detected_at``/``restored_at`` stay ``None`` while the outage is
    still undetected/unrepaired; the mean of ``restored_at - down_at``
    over completed outages is the bench E12 "time to re-enforcement".
    """

    device: str
    mbox: str
    fail_mode: str
    down_at: float
    detected_at: float | None = None
    restored_at: float | None = None

    @property
    def downtime(self) -> float | None:
        if self.restored_at is None:
            return None
        return self.restored_at - self.down_at


class MboxManager:
    """Creates, reconfigures and tears down µmboxes on one host."""

    def __init__(
        self,
        sim: "Simulator",
        host: MboxHost,
        boot_latency: float = 0.030,
        pool_attach_latency: float = 0.001,
        reconfig_latency: float = 0.005,
        pool_size: int = 4,
        capacity: int = 256,
        signature_provider: SignatureProvider | None = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.boot_latency = boot_latency
        self.pool_attach_latency = pool_attach_latency
        self.reconfig_latency = reconfig_latency
        self.capacity = capacity
        self.signature_provider = signature_provider
        self._pool = pool_size  # pre-booted spare micro-VMs
        self._pool_max = pool_size
        self._ids = itertools.count(1)
        self.records: list[DeploymentRecord] = []
        self.boots = 0
        self.pool_hits = 0
        self.reconfigs = 0
        # Health model: crashed instances are found by the periodic health
        # sweep and rebooted; the orchestrator re-pins chains on recovery.
        self.crashes = 0
        self.restarts = 0
        self.outages: list[OutageRecord] = []
        self.health_check_period: float | None = None
        #: Called with the device name once its replacement µmbox is ready
        #: (the orchestrator re-pins the chain here).
        self.on_recovery: Callable[[str], None] | None = None
        self._postures: dict[str, Posture] = {}
        self._restarting: set[str] = set()
        self._stop_health: Callable[[], None] | None = None
        # Observability: lifecycle gauges plus per-operation latency
        # histograms (observed once per deploy -- control-plane frequency).
        metrics = sim.metrics
        self.metric_labels = dict(host.metric_labels)
        metrics.gauge("mbox_active", fn=self.active_count, **self.metric_labels)
        metrics.gauge("mbox_boots", fn=lambda: self.boots, **self.metric_labels)
        metrics.gauge("mbox_pool_hits", fn=lambda: self.pool_hits, **self.metric_labels)
        metrics.gauge("mbox_reconfigs", fn=lambda: self.reconfigs, **self.metric_labels)
        metrics.gauge("mbox_pool_free", fn=lambda: self._pool, **self.metric_labels)
        metrics.gauge("mbox_crashes", fn=lambda: self.crashes, **self.metric_labels)
        metrics.gauge("mbox_restarts", fn=lambda: self.restarts, **self.metric_labels)
        metrics.gauge("mbox_down", fn=self.down_count, **self.metric_labels)
        self._deploy_latency = {
            operation: metrics.histogram(
                "mbox_deploy_latency", operation=operation, **self.metric_labels
            )
            for operation in ("boot", "pool", "reconfigure")
        }

    # ------------------------------------------------------------------
    def active_count(self) -> int:
        return len(self.host.mboxes)

    def _elements_for(self, posture: Posture) -> list[Element]:
        return [
            _build_element(spec, self.signature_provider) for spec in posture.modules
        ]

    def deploy(self, device: str, posture: Posture) -> DeploymentRecord:
        """Give ``device`` the µmbox its posture prescribes.

        Reconfiguration of an existing µmbox is in-place and keeps the old
        pipeline serving until the new one is loaded (no downtime); fresh
        deployments come from the pool when possible, else cold-boot.
        """
        now = self.sim.now
        existing = self.host.mboxes.get(device)
        elements = self._elements_for(posture)
        self._postures[device] = posture

        if existing is not None:
            self.reconfigs += 1
            ready_at = now + self.reconfig_latency

            def swap() -> None:
                existing.reconfigure(elements)
                existing.kind = posture.name
                existing.fail_mode = posture.failure_mode()

            self.sim.schedule(self.reconfig_latency, swap)
            record = DeploymentRecord(device, posture.name, "reconfigure", now, ready_at)
            self.records.append(record)
            self._deploy_latency["reconfigure"].observe(record.latency)
            return record

        if self.active_count() >= self.capacity:
            raise RuntimeError(
                f"µmbox capacity exhausted ({self.capacity}); "
                "add cluster machines or collapse postures"
            )

        mbox = Mbox(
            name=f"mbox-{next(self._ids)}",
            device=device,
            elements=elements,
            kind=posture.name,
            fail_mode=posture.failure_mode(),
        )
        if self._pool > 0:
            self._pool -= 1
            self.pool_hits += 1
            latency = self.pool_attach_latency
            operation = "pool"
            # Replenish the pool in the background (boot a fresh spare).
            self.sim.schedule(self.boot_latency, self._replenish)
        else:
            self.boots += 1
            latency = self.boot_latency
            operation = "boot"

        mbox.ready = False
        self.host.bind(device, mbox)
        self.sim.schedule(latency, self.host.mark_ready, device)
        record = DeploymentRecord(device, posture.name, operation, now, now + latency)
        self.records.append(record)
        self._deploy_latency[operation].observe(record.latency)
        return record

    def _replenish(self) -> None:
        if self._pool < self._pool_max:
            self._pool += 1

    def teardown(self, device: str) -> None:
        if device in self.host.mboxes:
            self.host.unbind(device)
            self._postures.pop(device, None)
            self._restarting.discard(device)
            self.records.append(
                DeploymentRecord(device, "-", "teardown", self.sim.now, self.sim.now)
            )
            # The freed micro-VM rejoins the pool after a reset cycle.
            self.sim.schedule(self.pool_attach_latency, self._replenish)

    # ------------------------------------------------------------------
    # Health model: crash, detect, restart, recover
    # ------------------------------------------------------------------
    def down_count(self) -> int:
        return sum(1 for mbox in self.host.mboxes.values() if mbox.down)

    def open_outages(self) -> list[OutageRecord]:
        """Outages not yet restored (the fleet health probe's signal)."""
        return [record for record in self.outages if record.restored_at is None]

    def posture_for(self, device: str) -> Posture | None:
        """The posture the device's µmbox is currently built from."""
        return self._postures.get(device)

    def crash(self, device: str, reason: str = "fault") -> bool:
        """Kill the device's µmbox instance (fault injection / chaos).

        The instance stays bound but ``down``: the host degrades its
        traffic per the posture's fail mode until the next health sweep
        notices and reboots a replacement.  Returns False when the device
        has no instance (or it is already down).
        """
        mbox = self.host.mboxes.get(device)
        if mbox is None or mbox.down:
            return False
        mbox.down = True
        self.crashes += 1
        self.outages.append(
            OutageRecord(
                device=device,
                mbox=mbox.name,
                fail_mode=mbox.fail_mode,
                down_at=self.sim.now,
            )
        )
        self.sim.journal.record(
            "mbox-crash",
            device=device,
            mbox=mbox.name,
            fail_mode=mbox.fail_mode,
            reason=reason,
        )
        return True

    def start_health_checks(self, period: float = 1.0) -> Callable[[], None]:
        """Sweep every instance every ``period`` seconds; reboot the dead.

        Detection is *polled*, not instantaneous -- a crashed µmbox stays
        down (degrading per its fail mode) until the sweep after the
        crash, which bounds the exposure window at roughly
        ``period + boot_latency``.  Returns (and remembers) the stop
        callable.
        """
        if self._stop_health is not None:
            self._stop_health()
        self.health_check_period = period
        self._stop_health = self.sim.every(period, self._health_sweep)
        return self._stop_health

    def stop_health_checks(self) -> None:
        if self._stop_health is not None:
            self._stop_health()
            self._stop_health = None
            self.health_check_period = None

    def _outage_for(self, device: str) -> OutageRecord | None:
        for record in reversed(self.outages):
            if record.device == device:
                return record
        return None

    def _health_sweep(self) -> None:
        for device, mbox in list(self.host.mboxes.items()):
            if mbox.down and device not in self._restarting:
                self._restart(device)
        # The sweep doubles as the durable stream's observation pulse:
        # while a telemetry backlog exists (partitioned controller), the
        # stream journals its depth at a rate-limited cadence so incident
        # timelines span the outage instead of going dark.
        stream = self.host.stream
        if stream is not None:
            stream.heartbeat()

    def _restart(self, device: str) -> None:
        """Cold-boot a replacement micro-VM for a crashed instance."""
        posture = self._postures.get(device)
        if posture is None:
            return
        self._restarting.add(device)
        outage = self._outage_for(device)
        if outage is not None and outage.detected_at is None:
            outage.detected_at = self.sim.now
        self.restarts += 1
        now = self.sim.now
        self.sim.journal.record(
            "mbox-restart",
            device=device,
            posture=posture.name,
            ready_at=now + self.boot_latency,
        )

        def come_up() -> None:
            self._restarting.discard(device)
            current = self._postures.get(device)
            if current is None:
                return  # torn down while rebooting
            replacement = Mbox(
                name=f"mbox-{next(self._ids)}",
                device=device,
                elements=self._elements_for(current),
                kind=current.name,
                fail_mode=current.failure_mode(),
            )
            self.host.bind(device, replacement)
            record = self._outage_for(device)
            if record is not None and record.restored_at is None:
                record.restored_at = self.sim.now
            self.sim.journal.record(
                "mbox-recovered",
                device=device,
                mbox=replacement.name,
                posture=current.name,
                downtime=(record.downtime if record is not None else None),
            )
            if self.on_recovery is not None:
                self.on_recovery(device)

        self.boots += 1
        record = DeploymentRecord(
            device, posture.name, "boot", now, now + self.boot_latency
        )
        self.records.append(record)
        self._deploy_latency["boot"].observe(record.latency)
        self.sim.schedule(self.boot_latency, come_up)

    # ------------------------------------------------------------------
    def latency_stats(self) -> dict[str, list[float]]:
        stats: dict[str, list[float]] = {}
        for record in self.records:
            stats.setdefault(record.operation, []).append(record.latency)
        return stats


class MonolithicMiddlebox:
    """The enterprise-appliance baseline for bench E7.

    One box filters for every device; any policy change is a restart of
    ``restart_latency`` seconds during which nothing is protected.  The
    class only models the control-plane cost -- the point of E7 is the
    availability gap, not packet processing.
    """

    def __init__(self, sim: "Simulator", restart_latency: float = 5.0) -> None:
        self.sim = sim
        self.restart_latency = restart_latency
        self.ready = True
        self.config_version = 0
        self.downtime_total = 0.0
        self.restarts = 0
        self._down_since: float | None = None
        self.records: list[DeploymentRecord] = []

    def apply_config(self, postures: dict[str, Posture]) -> DeploymentRecord:
        """Any change = full restart; overlapping changes extend downtime."""
        now = self.sim.now
        self.restarts += 1
        self.config_version += 1
        version = self.config_version
        if self.ready:
            self.ready = False
            self._down_since = now

        def come_up() -> None:
            if self.config_version == version:  # no newer restart pending
                self.ready = True
                if self._down_since is not None:
                    self.downtime_total += self.sim.now - self._down_since
                    self._down_since = None

        self.sim.schedule(self.restart_latency, come_up)
        record = DeploymentRecord(
            device="*",
            posture=f"config-v{version}",
            operation="restart",
            requested_at=now,
            ready_at=now + self.restart_latency,
        )
        self.records.append(record)
        return record
