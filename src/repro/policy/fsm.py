"""The FSM policy abstraction (paper section 3.2).

A :class:`PolicyFSM` maps system states to per-device security postures.
Because full enumeration "may not be practical as the number of devices and
states scale", the FSM is *rule-based*: an ordered list of
:class:`PostureRule` (state predicate -> device posture), with the
brute-force enumeration retained as an explicit method so experiment E1 can
measure exactly how impractical it is.

Lookup semantics: for a device, the highest-priority rule whose predicate
matches the current state wins; ties break to the more specific predicate,
then to the earlier-defined rule (all deterministic).  Devices with no
matching rule get the FSM's default posture.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.policy.context import ContextDomain, StateSpace, SystemState, Variable
from repro.policy.posture import ALLOW_ALL, Posture

_RULE_IDS = itertools.count(1)


@dataclass(frozen=True)
class StatePredicate:
    """A conjunction of ``variable == value`` requirements.

    The empty predicate matches every state (used for defaults).
    """

    requirements: tuple[tuple[str, str], ...] = ()

    @classmethod
    def make(cls, requirements: Mapping[str, str] | Iterable[tuple[str, str]]) -> "StatePredicate":
        if isinstance(requirements, Mapping):
            items = requirements.items()
        else:
            items = list(requirements)
        return cls(tuple(sorted(items)))

    def matches(self, state: SystemState) -> bool:
        return all(state.get(key) == value for key, value in self.requirements)

    def variables(self) -> set[str]:
        return {key for key, __ in self.requirements}

    @property
    def specificity(self) -> int:
        return len(self.requirements)

    def overlaps(self, other: "StatePredicate") -> bool:
        """Some state can satisfy both predicates unless a shared variable
        is pinned to different values."""
        mine = dict(self.requirements)
        for key, value in other.requirements:
            if key in mine and mine[key] != value:
                return False
        return True

    def subsumes(self, other: "StatePredicate") -> bool:
        """Every state matching ``other`` also matches ``self``."""
        theirs = dict(other.requirements)
        return all(theirs.get(key) == value for key, value in self.requirements)

    def __str__(self) -> str:
        if not self.requirements:
            return "<always>"
        return " & ".join(f"{k}={v}" for k, v in self.requirements)


@dataclass
class PostureRule:
    """``when <predicate> then <device> gets <posture>``."""

    predicate: StatePredicate
    device: str
    posture: Posture
    priority: int = 100
    rule_id: int = field(default_factory=lambda: next(_RULE_IDS))
    hits: int = 0

    def sort_key(self) -> tuple[int, int, int]:
        return (-self.priority, -self.predicate.specificity, self.rule_id)


class PolicyFSM:
    """The complete policy: domains + rules + default posture."""

    def __init__(
        self,
        domains: Iterable[ContextDomain],
        rules: Iterable[PostureRule] = (),
        default_posture: Posture = ALLOW_ALL,
        devices: Iterable[str] = (),
    ) -> None:
        self.space = StateSpace(domains)
        self.rules: list[PostureRule] = sorted(rules, key=PostureRule.sort_key)
        self.default_posture = default_posture
        self._rules_by_device: dict[str, list[PostureRule]] | None = None
        known = {
            v.name for v in self.space.variables() if v.kind == "ctx"
        }
        known.update(devices)
        known.update(rule.device for rule in self.rules)
        self.devices: tuple[str, ...] = tuple(sorted(known))
        self._validate()

    def _validate(self) -> None:
        valid_keys = {v.key for v in self.space.variables()}
        for rule in self.rules:
            unknown = rule.predicate.variables() - valid_keys
            if unknown:
                raise ValueError(
                    f"rule for {rule.device}: predicate references unknown "
                    f"variables {sorted(unknown)}"
                )
            for key, value in rule.predicate.requirements:
                domain = self.space.domain_of(key)
                if value not in domain.values:
                    raise ValueError(
                        f"rule for {rule.device}: {key}={value!r} not in "
                        f"domain {domain.values}"
                    )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def add_rule(self, rule: PostureRule) -> None:
        self.rules.append(rule)
        self.rules.sort(key=PostureRule.sort_key)
        self._rules_by_device = None
        if rule.device not in self.devices:
            self.devices = tuple(sorted({*self.devices, rule.device}))
        self._validate()

    def rule_for(self, state: SystemState, device: str) -> PostureRule | None:
        """The winning rule for ``device`` in ``state`` (None = default).

        This is the explain API behind incident reconstruction: it answers
        *why* a device has its posture without counting a hit.
        """
        for rule in self.rules:
            if rule.device == device and rule.predicate.matches(state):
                return rule
        return None

    def posture_for(self, state: SystemState, device: str) -> Posture:
        """The winning posture for ``device`` in ``state``."""
        rule = self.rule_for(state, device)
        if rule is not None:
            rule.hits += 1
            return rule.posture
        return self.default_posture

    def postures(self, state: SystemState) -> dict[str, Posture]:
        """Posture assignment for every known device in ``state``."""
        return {device: self.posture_for(state, device) for device in self.devices}

    # ------------------------------------------------------------------
    # Brute-force enumeration (experiment E1's baseline)
    # ------------------------------------------------------------------
    def state_count(self) -> int:
        """``|S|`` without materializing anything."""
        return self.space.size()

    def enumerate_states(self, limit: int | None = None) -> Iterator[SystemState]:
        return self.space.enumerate(limit=limit)

    def materialize(self, limit: int | None = None) -> dict[SystemState, dict[str, Posture]]:
        """The full (state -> device -> posture) table.

        This is the "brute force" representation section 3.2 warns about;
        E1 measures its growth against the pruned representations.
        """
        table: dict[SystemState, dict[str, Posture]] = {}
        for state in self.enumerate_states(limit=limit):
            table[state] = self.postures(state)
        return table

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def rules_for(self, device: str) -> list[PostureRule]:
        # Grouped lazily so hot callers (projection, pruning, hierarchy
        # partitioning) see O(own rules), not O(all rules), per device.
        # The grouping preserves the sorted table order, and ``add_rule``
        # invalidates it.
        if self._rules_by_device is None:
            grouped: dict[str, list[PostureRule]] = {}
            for rule in self.rules:
                grouped.setdefault(rule.device, []).append(rule)
            self._rules_by_device = grouped
        return list(self._rules_by_device.get(device, ()))

    def referenced_variables(self) -> set[str]:
        """Variables any rule actually tests (pruning's raw material)."""
        refs: set[str] = set()
        for rule in self.rules:
            refs.update(rule.predicate.variables())
        return refs

    def __repr__(self) -> str:
        return (
            f"PolicyFSM({len(self.space.domains)} vars, |S|={self.state_count()}, "
            f"{len(self.rules)} rules, {len(self.devices)} devices)"
        )
