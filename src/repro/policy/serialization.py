"""Policy serialization: policies and postures as JSON config.

Deployments want policies in version control, reviewed like code and
shipped to controllers as data.  The format is a direct transliteration of
the FSM abstraction::

    {
      "domains": {"ctx:cam": ["normal", "suspicious", "compromised"],
                   "env:smoke": ["clear", "detected"]},
      "default_posture": {"name": "allow", "modules": []},
      "rules": [
        {"when": {"ctx:cam": "suspicious"},
         "device": "cam",
         "priority": 200,
         "posture": {"name": "firewall",
                      "modules": [{"kind": "stateful_firewall",
                                    "config": {"default": "drop"}}]}}
      ]
    }

Round-trip guarantee: ``loads(dumps(policy))`` evaluates identically to
``policy`` on every state (tested, including property-based).
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.policy.context import ContextDomain, Variable
from repro.policy.fsm import PolicyFSM, PostureRule, StatePredicate
from repro.policy.posture import MboxSpec, Posture


# ----------------------------------------------------------------------
# Postures
# ----------------------------------------------------------------------
def posture_to_dict(posture: Posture) -> dict[str, Any]:
    data = {
        "name": posture.name,
        "description": posture.description,
        "modules": [
            {"kind": spec.kind, "config": spec.config_dict()}
            for spec in posture.modules
        ],
    }
    if posture.fail_mode:
        data["fail_mode"] = posture.fail_mode
    return data


def posture_from_dict(data: Mapping[str, Any]) -> Posture:
    modules = tuple(
        MboxSpec.make(str(m["kind"]), **dict(m.get("config", {})))
        for m in data.get("modules", ())
    )
    return Posture(
        name=str(data.get("name", "unnamed")),
        modules=modules,
        description=str(data.get("description", "")),
        fail_mode=str(data.get("fail_mode", "")),
    )


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def policy_to_dict(policy: PolicyFSM) -> dict[str, Any]:
    return {
        "domains": {
            d.variable.key: list(d.values) for d in policy.space.domains
        },
        "devices": list(policy.devices),
        "default_posture": posture_to_dict(policy.default_posture),
        "rules": [
            {
                "when": dict(rule.predicate.requirements),
                "device": rule.device,
                "priority": rule.priority,
                "posture": posture_to_dict(rule.posture),
            }
            for rule in policy.rules
        ],
    }


def policy_from_dict(data: Mapping[str, Any]) -> PolicyFSM:
    domains = [
        ContextDomain(Variable.parse(key), tuple(values))
        for key, values in data.get("domains", {}).items()
    ]
    rules = [
        PostureRule(
            predicate=StatePredicate.make(dict(entry.get("when", {}))),
            device=str(entry["device"]),
            posture=posture_from_dict(entry.get("posture", {})),
            priority=int(entry.get("priority", 100)),
        )
        for entry in data.get("rules", ())
    ]
    return PolicyFSM(
        domains=domains,
        rules=rules,
        default_posture=posture_from_dict(
            data.get("default_posture", {"name": "allow"})
        ),
        devices=tuple(data.get("devices", ())),
    )


def dumps(policy: PolicyFSM, indent: int | None = 2) -> str:
    return json.dumps(policy_to_dict(policy), indent=indent, sort_keys=True)


def loads(text: str) -> PolicyFSM:
    return policy_from_dict(json.loads(text))


def save(policy: PolicyFSM, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(policy))


def load(path: str) -> PolicyFSM:
    with open(path, encoding="utf-8") as handle:
        return loads(handle.read())
