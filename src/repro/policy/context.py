"""Security contexts, environment levels, and system states.

Section 3.2: "suppose we have D networked IoT devices, and each Di has a
security context Ci, which can take one or more values (e.g., 'normal' or
'suspicious' or 'unpatched').  Second, suppose we have E environmental
variables ... Now, we can represent the set of possible states S of the
system in terms of these device contexts and environmental variables."

We name policy variables uniformly -- ``ctx:<device>`` for device security
contexts and ``env:<variable>`` for environment levels -- so every layer
(FSM, pruning, fuzzing, controller view) speaks the same state vocabulary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

# Canonical device security-context values (the paper's examples).
NORMAL = "normal"
SUSPICIOUS = "suspicious"
COMPROMISED = "compromised"
UNPATCHED = "unpatched"

DEFAULT_CONTEXT_DOMAIN: tuple[str, ...] = (NORMAL, SUSPICIOUS, COMPROMISED)

#: Severity ordering for context escalation.  Contexts only move *up* this
#: scale; lowering one is an explicit administrative act (``clear_context``).
SEVERITY: dict[str, int] = {NORMAL: 0, UNPATCHED: 1, SUSPICIOUS: 2, COMPROMISED: 3}


@dataclass(frozen=True)
class Variable:
    """A policy variable: a device context or an environment variable."""

    kind: str  # "ctx" | "env"
    name: str

    def __post_init__(self) -> None:
        if self.kind not in ("ctx", "env"):
            raise ValueError(f"variable kind must be ctx or env, got {self.kind!r}")

    @property
    def key(self) -> str:
        return f"{self.kind}:{self.name}"

    @classmethod
    def parse(cls, key: str) -> "Variable":
        kind, __, name = key.partition(":")
        return cls(kind, name)

    def __str__(self) -> str:
        return self.key


def ctx(device: str) -> Variable:
    """The security-context variable of a device."""
    return Variable("ctx", device)


def env(name: str) -> Variable:
    """An environment-level variable."""
    return Variable("env", name)


@dataclass(frozen=True)
class ContextDomain:
    """A variable together with its finite value domain."""

    variable: Variable
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"{self.variable}: empty domain")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"{self.variable}: duplicate values {self.values}")

    @property
    def size(self) -> int:
        return len(self.values)


class SystemState(Mapping[str, str]):
    """One joint assignment of every policy variable: an element of S.

    Immutable and hashable so it can key posture tables.  Construct from a
    plain dict of ``variable key -> value``.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, assignment: Mapping[str, str]) -> None:
        self._items: tuple[tuple[str, str], ...] = tuple(sorted(assignment.items()))
        self._hash = hash(self._items)

    def __getitem__(self, key: str) -> str:
        for k, v in self._items:
            if k == key:
                return v
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return iter(k for k, __ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SystemState):
            return self._items == other._items
        return NotImplemented

    def with_values(self, **overrides: str) -> "SystemState":
        """A copy with some ``key=value`` entries replaced (keys use the
        ``kind_name`` form is not supported here -- pass full keys via
        :meth:`updated` instead)."""
        return self.updated({k.replace("__", ":"): v for k, v in overrides.items()})

    def updated(self, changes: Mapping[str, str]) -> "SystemState":
        merged = dict(self._items)
        merged.update(changes)
        return SystemState(merged)

    def project(self, keys: Iterable[str]) -> "SystemState":
        """Restriction of the state to a subset of variables."""
        wanted = set(keys)
        return SystemState({k: v for k, v in self._items if k in wanted})

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self._items)
        return f"SystemState({body})"


class StateSpace:
    """The full combinatorial space ``S`` over a set of domains.

    :meth:`size` is computed without materializing (the whole point of E1:
    the count explodes long before memory does); :meth:`enumerate` yields
    lazily for spaces small enough to walk.
    """

    def __init__(self, domains: Iterable[ContextDomain]) -> None:
        self.domains: tuple[ContextDomain, ...] = tuple(domains)
        keys = [d.variable.key for d in self.domains]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate variables in state space")

    def size(self) -> int:
        """``|S| = prod_i |Ci| x prod_j |Ej|`` (section 3.2)."""
        return math.prod(d.size for d in self.domains)

    def enumerate(self, limit: int | None = None) -> Iterator[SystemState]:
        """Yield every state, depth-first over domains.

        ``limit`` caps how many states are produced (guard for tests).
        """
        keys = [d.variable.key for d in self.domains]
        values = [d.values for d in self.domains]
        produced = 0

        def rec(index: int, acc: dict[str, str]) -> Iterator[SystemState]:
            nonlocal produced
            if limit is not None and produced >= limit:
                return
            if index == len(keys):
                produced += 1
                yield SystemState(acc)
                return
            for value in values[index]:
                acc[keys[index]] = value
                yield from rec(index + 1, acc)
                if limit is not None and produced >= limit:
                    return
            acc.pop(keys[index], None)

        yield from rec(0, {})

    def domain_of(self, variable: Variable | str) -> ContextDomain:
        key = variable.key if isinstance(variable, Variable) else variable
        for domain in self.domains:
            if domain.variable.key == key:
                return domain
        raise KeyError(key)

    def variables(self) -> list[Variable]:
        return [d.variable for d in self.domains]
