"""A fluent DSL for writing IoTSec policies.

The brute-force abstraction is expressive but verbose; the builder keeps
policy definitions readable::

    policy = (
        PolicyBuilder()
        .device("fire_alarm")
        .device("window")
        .env("smoke", ("clear", "detected"))
        .when(ctx("fire_alarm"), SUSPICIOUS)
            .give("window", block_commands("open"))
        .when(ctx("window"), SUSPICIOUS)
            .give("window", require_robot_check())
        .build()
    )

Every ``when`` opens a rule scope; ``give`` closes it.  ``also`` adds an
extra conjunct to the pending predicate.
"""

from __future__ import annotations

from repro.policy.context import (
    DEFAULT_CONTEXT_DOMAIN,
    ContextDomain,
    Variable,
    ctx,
)
from repro.policy.fsm import PolicyFSM, PostureRule, StatePredicate
from repro.policy.posture import ALLOW_ALL, Posture


class _RuleScope:
    """The object returned by ``when``: accumulates conjuncts, then binds
    postures with ``give``."""

    def __init__(self, builder: "PolicyBuilder", requirements: dict[str, str]) -> None:
        self._builder = builder
        self._requirements = requirements

    def also(self, variable: Variable | str, value: str) -> "_RuleScope":
        key = variable.key if isinstance(variable, Variable) else variable
        self._requirements[key] = value
        return self

    def give(
        self, device: str, posture: Posture, priority: int = 100
    ) -> "PolicyBuilder":
        self._builder._rules.append(
            PostureRule(
                predicate=StatePredicate.make(self._requirements),
                device=device,
                posture=posture,
                priority=priority,
            )
        )
        return self._builder


class PolicyBuilder:
    """Accumulates domains and rules; ``build()`` returns the FSM."""

    def __init__(self) -> None:
        self._domains: list[ContextDomain] = []
        self._devices: list[str] = []
        self._rules: list[PostureRule] = []
        self._default = ALLOW_ALL

    # ------------------------------------------------------------------
    # Vocabulary
    # ------------------------------------------------------------------
    def device(
        self, name: str, contexts: tuple[str, ...] = DEFAULT_CONTEXT_DOMAIN
    ) -> "PolicyBuilder":
        """Declare a device and its security-context domain."""
        self._domains.append(ContextDomain(ctx(name), contexts))
        self._devices.append(name)
        return self

    def env(self, name: str, levels: tuple[str, ...]) -> "PolicyBuilder":
        """Declare an environment variable and its levels."""
        self._domains.append(ContextDomain(Variable("env", name), levels))
        return self

    def default_posture(self, posture: Posture) -> "PolicyBuilder":
        self._default = posture
        return self

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    def when(self, variable: Variable | str, value: str) -> _RuleScope:
        key = variable.key if isinstance(variable, Variable) else variable
        return _RuleScope(self, {key: value})

    def always(self) -> _RuleScope:
        """A rule that applies in every state (baseline postures)."""
        return _RuleScope(self, {})

    def rule(self, rule: PostureRule) -> "PolicyBuilder":
        self._rules.append(rule)
        return self

    # ------------------------------------------------------------------
    def build(self) -> PolicyFSM:
        return PolicyFSM(
            domains=self._domains,
            rules=self._rules,
            default_posture=self._default,
            devices=self._devices,
        )
