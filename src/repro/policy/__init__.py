"""Policy abstractions (paper section 3).

The package contains both the paper's proposal and the strawmen it argues
against, so the experiments can compare them:

- :mod:`repro.policy.context` -- device security contexts, environment
  levels, and the joint :class:`SystemState` whose combinatorial size
  (``|S| = prod |Ci| x |Ej|``) is the section 3.2 scaling problem.
- :mod:`repro.policy.posture` -- per-device security postures: which
  µmboxes with which configuration.
- :mod:`repro.policy.fsm` -- the FSM policy abstraction: posture rules over
  system states, with brute-force enumeration for the explosion experiment.
- :mod:`repro.policy.pruning` -- independence- and equivalence-based state
  space reduction (section 3.2's closing idea).
- :mod:`repro.policy.conflicts` -- conflict/shadowing/safety analysis
  (section 3.1's critique of independent recipes).
- :mod:`repro.policy.ifttt` -- the IFTTT strawman: recipes, the Table 2
  corpus, a runtime engine, and translation into the FSM abstraction.
- :mod:`repro.policy.acl` -- the traditional Match -> Action strawman.
- :mod:`repro.policy.builder` -- a fluent DSL for writing policies.
"""

from repro.policy.builder import PolicyBuilder
from repro.policy.context import (
    ContextDomain,
    SystemState,
    Variable,
    ctx,
    env,
)
from repro.policy.fsm import PolicyFSM, PostureRule, StatePredicate
from repro.policy.posture import ALLOW_ALL, MboxSpec, Posture

__all__ = [
    "ALLOW_ALL",
    "ContextDomain",
    "MboxSpec",
    "PolicyBuilder",
    "PolicyFSM",
    "Posture",
    "PostureRule",
    "StatePredicate",
    "SystemState",
    "Variable",
    "ctx",
    "env",
]
