"""Policy conflict, shadowing, and safety analysis.

Section 3.1 faults IFTTT-style recipes because "they assume recipes are
independent, which can either lead to conflicts or safety violations", and
section 3.2 notes "the state explosion makes it difficult to check for
potential policy conflicts or correctness issues".  This module provides the
checks, over both representations:

- FSM rules: ambiguity (overlapping equal-precedence rules that disagree)
  and shadowing (rules that can never fire).
- Recipes: simultaneous-trigger actuation disagreements (the paper's smoke
  alarm vs Sighthound lights example).
- Safety invariants: requirements that in every state matching a predicate,
  a device's posture carries a given module (e.g. "whenever the fire alarm
  is suspicious, the window must have a command filter").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from repro.policy.fsm import PolicyFSM, PostureRule, StatePredicate
from repro.policy.posture import Posture

#: Command pairs that drive an actuator in opposite directions.
OPPOSING_COMMANDS: frozenset[frozenset[str]] = frozenset(
    frozenset(pair)
    for pair in (
        ("on", "off"),
        ("open", "close"),
        ("lock", "unlock"),
        ("heat", "cool"),
        ("record", "stop"),
        ("go", "stop"),
    )
)


def commands_oppose(a: str, b: str) -> bool:
    """True for antagonistic command pairs (on/off, open/close, ...)."""
    return frozenset((a, b)) in OPPOSING_COMMANDS


@dataclass(frozen=True)
class Conflict:
    """One detected problem."""

    kind: str  # "ambiguity" | "shadowing" | "recipe-conflict" | "safety"
    subject: str
    detail: str
    severity: str = "warning"  # "warning" | "error"

    def __str__(self) -> str:
        return f"[{self.severity}] {self.kind}: {self.subject} -- {self.detail}"


# ----------------------------------------------------------------------
# FSM rule analysis
# ----------------------------------------------------------------------
def find_rule_ambiguities(fsm: PolicyFSM) -> list[Conflict]:
    """Pairs of same-device rules that can match the same state with equal
    precedence but different postures: the winner is decided only by
    definition order, which is almost never what the author intended."""
    conflicts = []
    for device in fsm.devices:
        rules = fsm.rules_for(device)
        for i, a in enumerate(rules):
            for b in rules[i + 1 :]:
                if a.posture == b.posture:
                    continue
                if a.priority != b.priority:
                    continue
                if a.predicate.specificity != b.predicate.specificity:
                    continue
                if a.predicate.overlaps(b.predicate):
                    conflicts.append(
                        Conflict(
                            kind="ambiguity",
                            subject=device,
                            detail=(
                                f"rules #{a.rule_id} ({a.predicate}) and "
                                f"#{b.rule_id} ({b.predicate}) overlap with equal "
                                f"precedence but postures {a.posture.name!r} vs "
                                f"{b.posture.name!r}"
                            ),
                            severity="error",
                        )
                    )
    return conflicts


def find_shadowed_rules(fsm: PolicyFSM) -> list[Conflict]:
    """Rules that can never fire because an earlier-sorted rule for the same
    device subsumes their predicate."""
    conflicts = []
    for device in fsm.devices:
        rules = fsm.rules_for(device)  # already in lookup order
        for i, later in enumerate(rules):
            for earlier in rules[:i]:
                if earlier.predicate.subsumes(later.predicate):
                    conflicts.append(
                        Conflict(
                            kind="shadowing",
                            subject=device,
                            detail=(
                                f"rule #{later.rule_id} ({later.predicate} -> "
                                f"{later.posture.name}) is shadowed by rule "
                                f"#{earlier.rule_id} ({earlier.predicate} -> "
                                f"{earlier.posture.name})"
                            ),
                        )
                    )
                    break
    return conflicts


# ----------------------------------------------------------------------
# Recipe analysis (duck-typed to avoid a circular import with ifttt)
# ----------------------------------------------------------------------
class RecipeLike(Protocol):  # pragma: no cover - typing helper
    name: str
    trigger_variable: str
    trigger_value: str
    action_device: str
    action_command: str


def _triggers_coincide(a: RecipeLike, b: RecipeLike) -> bool:
    """Can both triggers hold at once?  Different variables: yes.  The same
    variable: only if they require the same value."""
    if a.trigger_variable != b.trigger_variable:
        return True
    return a.trigger_value == b.trigger_value


def find_recipe_conflicts(recipes: Sequence[RecipeLike]) -> list[Conflict]:
    """Recipe pairs that can fire together yet disagree about an actuator.

    ``error`` severity for directly opposing commands (open vs close);
    ``warning`` for merely different commands on the same actuator (the
    paper's ambiguity example: two rules both recoloring the lights).
    """
    conflicts = []
    for i, a in enumerate(recipes):
        for b in recipes[i + 1 :]:
            if a.action_device != b.action_device:
                continue
            if a.action_command == b.action_command:
                continue
            if not _triggers_coincide(a, b):
                continue
            severity = "error" if commands_oppose(a.action_command, b.action_command) else "warning"
            conflicts.append(
                Conflict(
                    kind="recipe-conflict",
                    subject=a.action_device,
                    detail=(
                        f"{a.name!r} ({a.trigger_variable}={a.trigger_value} -> "
                        f"{a.action_command}) vs {b.name!r} "
                        f"({b.trigger_variable}={b.trigger_value} -> "
                        f"{b.action_command})"
                    ),
                    severity=severity,
                )
            )
    return conflicts


# ----------------------------------------------------------------------
# Safety invariants
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SafetyInvariant:
    """In every state matching ``condition``, ``device``'s posture must
    include a module of ``required_module`` kind (or simply must not be
    permissive when ``required_module`` is None)."""

    name: str
    condition: StatePredicate
    device: str
    required_module: str | None = None

    def satisfied_by(self, posture: Posture) -> bool:
        if self.required_module is None:
            return not posture.is_permissive
        return self.required_module in posture.module_kinds()


def check_safety(
    fsm: PolicyFSM,
    invariants: Iterable[SafetyInvariant],
    enumerate_limit: int = 200_000,
) -> list[Conflict]:
    """Verify every invariant over the (relevant slice of the) state space.

    For tractability we enumerate only over the variables referenced by the
    invariant's condition plus the device's rule variables -- sound for the
    same projection argument as :mod:`repro.policy.pruning`.
    """
    from repro.policy.pruning import relevant_variables

    violations = []
    for invariant in invariants:
        keys = sorted(
            invariant.condition.variables()
            | relevant_variables(fsm, invariant.device)
        )
        domains = [fsm.space.domain_of(key) for key in keys]
        total = 1
        for domain in domains:
            total *= domain.size
        if total > enumerate_limit:
            violations.append(
                Conflict(
                    kind="safety",
                    subject=invariant.name,
                    detail=f"projected space too large to check ({total} states)",
                )
            )
            continue

        def rec(index: int, acc: dict[str, str]) -> bool:
            """Returns True when a violation was found."""
            if index == len(domains):
                from repro.policy.context import SystemState

                state = SystemState(acc)
                if invariant.condition.matches(state):
                    posture = fsm.posture_for(state, invariant.device)
                    if not invariant.satisfied_by(posture):
                        violations.append(
                            Conflict(
                                kind="safety",
                                subject=invariant.name,
                                detail=(
                                    f"state {state} gives {invariant.device} "
                                    f"posture {posture.name!r}, missing "
                                    f"{invariant.required_module or 'any module'}"
                                ),
                                severity="error",
                            )
                        )
                        return True
                return False
            for value in domains[index].values:
                acc[keys[index]] = value
                if rec(index + 1, acc):
                    return True
            acc.pop(keys[index], None)
            return False

        rec(0, {})
    return violations


def full_report(fsm: PolicyFSM, invariants: Iterable[SafetyInvariant] = ()) -> list[Conflict]:
    """All three analyses in one pass."""
    report = find_rule_ambiguities(fsm)
    report.extend(find_shadowed_rules(fsm))
    report.extend(check_safety(fsm, invariants))
    return report
