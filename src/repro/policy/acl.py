"""The traditional-IT strawman: static (stateful) ACLs.

Section 3.1: "a simple policy abstraction used by firewalls and IDSes, is a
set of Match -> Action pairs ... More advanced policies also include
connection state (State, Match -> Action)".  These cannot see environmental
or cross-device context -- which is exactly what bench E8 demonstrates by
running the same attacks against an ACL-only defence and against IoTSec.

The ACL compiles to edge-switch flow rules; the stateful variant is a tiny
connection tracker usable inside a µmbox element as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.packet import Packet
from repro.sdn.flowrule import Action, FlowMatch, FlowRule


@dataclass(frozen=True)
class AclEntry:
    """One Match -> permit/deny line."""

    match: FlowMatch
    permit: bool
    priority: int = 100

    def __str__(self) -> str:
        verb = "permit" if self.permit else "deny"
        return f"{verb} prio={self.priority} {self.match}"


class StaticAcl:
    """An ordered ACL with a default action, compilable to flow rules."""

    def __init__(self, entries: list[AclEntry] | None = None, default_permit: bool = True) -> None:
        self.entries: list[AclEntry] = sorted(
            entries or [], key=lambda e: -e.priority
        )
        self.default_permit = default_permit

    def add(self, entry: AclEntry) -> None:
        self.entries.append(entry)
        self.entries.sort(key=lambda e: -e.priority)

    def permits(self, packet: Packet) -> bool:
        for entry in self.entries:
            if entry.match.matches(packet):
                return True if entry.permit else False
        return self.default_permit

    def compile(self, forward_port_for: dict[str, int], controller_fallback: bool = False) -> list[FlowRule]:
        """Materialize as switch flow rules.

        ``forward_port_for`` maps destination node name -> output port for
        permitted traffic.  Deny entries become drop rules.  The default
        action becomes a lowest-priority wildcard.
        """
        rules: list[FlowRule] = []
        for entry in self.entries:
            if entry.permit:
                dst = entry.match.dst
                if dst is None or dst not in forward_port_for:
                    continue  # a permit with no known egress is a no-op
                action = Action.forward(forward_port_for[dst])
            else:
                action = Action.drop()
            rules.append(
                FlowRule(match=entry.match, actions=(action,), priority=entry.priority)
            )
        default = (
            Action.controller()
            if controller_fallback
            else (Action.drop() if not self.default_permit else None)
        )
        if default is not None:
            rules.append(
                FlowRule(match=FlowMatch(), actions=(default,), priority=0)
            )
        return rules


@dataclass
class ConnectionTracker:
    """Minimal stateful-firewall state: allow replies to outbound flows.

    "a stateful firewall allows incoming traffic if an outgoing connection
    was established earlier" (section 3.1).
    """

    established: set[tuple[str, str, str, int, int]] = field(default_factory=set)

    def note_outbound(self, packet: Packet) -> None:
        # The packet's 5-tuple, taken directly off the header fields --
        # same key as flow_key(packet), no Flow object in the fast path.
        self.established.add(
            (packet.src, packet.dst, packet.protocol, packet.sport, packet.dport)
        )

    def is_reply(self, packet: Packet) -> bool:
        # Reversed 5-tuple: a reply to (src, dst, sport, dport) travels
        # (dst, src, dport, sport).
        return (
            packet.dst,
            packet.src,
            packet.protocol,
            packet.dport,
            packet.sport,
        ) in self.established

    def __len__(self) -> int:
        return len(self.established)
