"""Security postures.

Section 3.2: "For each state Sk, we define the security posture for each
device Posture(Sk, Di).  This security posture specifies the set of security
modules through which the traffic for the device needs to be subjected
(e.g., 'proxy'-ing capabilities) as well as the set of anomaly detection and
signature detection rules that need to be applied."

A :class:`Posture` is therefore a named, ordered set of :class:`MboxSpec`
(µmbox kind + configuration).  The orchestrator materializes specs into
running µmboxes; equality of postures is what the pruning pass exploits to
collapse states.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping


def _freeze(value: Any) -> Any:
    """Recursively convert dict/list config into hashable tuples."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set)):
        items = [_freeze(v) for v in value]
        if isinstance(value, set):
            items.sort(key=repr)
        return tuple(items)
    return value


@dataclass(frozen=True)
class MboxSpec:
    """One security module in a posture: a µmbox kind plus configuration.

    ``kind`` names a registered µmbox class (see
    :data:`repro.mboxes.manager.MBOX_KINDS`): ``"password_proxy"``,
    ``"signature_ids"``, ``"stateful_firewall"``, ``"rate_limiter"``,
    ``"dns_guard"``, ``"command_whitelist"`` ...

    Config is frozen at construction so specs are hashable and comparable
    -- posture identity must be structural for state collapsing to work.
    """

    kind: str
    config: tuple = field(default_factory=tuple)

    @classmethod
    def make(cls, kind: str, **config: Any) -> "MboxSpec":
        return cls(kind, _freeze(config))

    def config_dict(self) -> dict[str, Any]:
        """Thaw the frozen config back into plain dicts/lists."""

        def thaw(value: Any) -> Any:
            if isinstance(value, tuple):
                if all(isinstance(e, tuple) and len(e) == 2 and isinstance(e[0], str) for e in value):
                    return {k: thaw(v) for k, v in value}
                return [thaw(v) for v in value]
            return value

        result = thaw(self.config)
        if result == []:  # empty config freezes to ()
            return {}
        return result

    def __str__(self) -> str:
        return f"{self.kind}({json.dumps(self.config_dict(), sort_keys=True, default=str)})"


#: µmbox kinds that only observe traffic -- a posture made purely of these
#: degrades *open* when its instance dies (losing visibility is acceptable;
#: losing connectivity is not).  Anything that enforces degrades *closed*.
MONITOR_ONLY_KINDS = frozenset({"telemetry_tap", "packet_logger", "login_monitor"})


@dataclass(frozen=True)
class Posture:
    """A named chain of security modules applied to one device's traffic.

    ``fail_mode`` is the degradation policy when the posture's µmbox
    instance crashes: ``"closed"`` (traffic blocks while the instance is
    down -- the default for anything that enforces) or ``"open"`` (traffic
    flows uninspected -- acceptable only for pure monitoring).  The empty
    string means "derive from the module kinds".
    """

    name: str
    modules: tuple[MboxSpec, ...] = ()
    description: str = ""
    fail_mode: str = ""

    @classmethod
    def make(
        cls,
        name: str,
        *modules: MboxSpec,
        description: str = "",
        fail_mode: str = "",
    ) -> "Posture":
        if fail_mode not in ("", "open", "closed"):
            raise ValueError(f"fail_mode must be '', 'open' or 'closed' (got {fail_mode!r})")
        return cls(
            name=name,
            modules=tuple(modules),
            description=description,
            fail_mode=fail_mode,
        )

    def failure_mode(self) -> str:
        """The resolved degradation policy: explicit, else derived.

        Monitoring-only postures fail open; any posture with at least one
        enforcing module fails closed -- an unprotected vulnerable device
        is the thing this whole system exists to prevent.
        """
        if self.fail_mode:
            return self.fail_mode
        if self.modules and all(m.kind in MONITOR_ONLY_KINDS for m in self.modules):
            return "open"
        return "closed"

    @property
    def is_permissive(self) -> bool:
        """True when no module interposes (traffic flows untouched)."""
        return not self.modules

    def module_kinds(self) -> tuple[str, ...]:
        return tuple(spec.kind for spec in self.modules)

    def summary(self) -> str:
        """Compact one-line form for journal fields: name + module kinds."""
        if self.is_permissive:
            return f"{self.name}(allow)"
        return f"{self.name}({'+'.join(self.module_kinds())})"

    def __str__(self) -> str:
        if self.is_permissive:
            return f"Posture({self.name}: allow)"
        chain = " -> ".join(str(m) for m in self.modules)
        return f"Posture({self.name}: {chain})"


#: The default posture: traffic flows with no interposition.
ALLOW_ALL = Posture(name="allow")


def quarantine(device: str) -> Posture:
    """A maximally restrictive posture: drop everything to/from the device."""
    return Posture.make(
        "quarantine",
        MboxSpec.make("stateful_firewall", default="drop"),
        description=f"isolate {device} entirely",
    )


def block_commands(*commands: str, name: str = "block-commands") -> Posture:
    """Drop specific control commands while letting the rest flow.

    Fig. 3's "Block 'open' + FW" posture is ``block_commands("open")``.
    """
    return Posture.make(
        name,
        MboxSpec.make("command_filter", deny=sorted(commands)),
        description=f"drop commands: {', '.join(sorted(commands))}",
    )


def require_proxy(new_password: str, name: str = "password-proxy") -> Posture:
    """Interpose the Fig. 4 password proxy with an admin-chosen secret."""
    return Posture.make(
        name,
        MboxSpec.make("password_proxy", new_password=new_password),
        description="enforce administrator-chosen password at the gateway",
    )
