"""The IFTTT strawman: recipes, the Table 2 corpus, and a runtime engine.

Section 3.1 examines IF-This-Then-That recipes ("If smoke emergency, set
lights to red color") as the natural IoT policy abstraction and finds three
flaws: no security context, assumed independence (conflicts), and tedious
manual reasoning.  We implement recipes faithfully -- including a runtime
:class:`RecipeEngine` that *executes* them over the simulation, because the
paper's section 2.1 break-in literally rides the victim's own automation --
plus the translation of a recipe into FSM guard rules, which is how IoTSec
subsumes the abstraction.

Table 2's per-device cross-device recipe counts (NEST Protect 188, Wemo
Insight 227, Scout Alarm 63) seed the synthetic corpus generator used by
benches Table2 and E2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.devices import protocol
from repro.netsim.node import Node
from repro.policy.fsm import PostureRule, StatePredicate
from repro.policy.posture import block_commands

if TYPE_CHECKING:  # pragma: no cover
    from repro.devices.base import IoTDevice
    from repro.environment.engine import Environment
    from repro.netsim.simulator import Simulator


@dataclass(frozen=True)
class Recipe:
    """``IF <trigger_variable>=<trigger_value> THEN <action_device>.<command>``.

    ``trigger_variable`` uses the unified policy-variable keys: ``env:smoke``
    for environment levels, ``dev:fire_alarm`` for a device's FSM state.
    """

    name: str
    trigger_variable: str
    trigger_value: str
    action_device: str
    action_command: str

    def __str__(self) -> str:
        return (
            f"IF {self.trigger_variable}={self.trigger_value} "
            f"THEN {self.action_device}.{self.action_command}"
        )


# ----------------------------------------------------------------------
# Table 2: the published examples and corpus scales
# ----------------------------------------------------------------------
#: device -> number of cross-device recipes published for it (Table 2).
TABLE2_COUNTS: dict[str, int] = {
    "nest_protect": 188,
    "wemo_insight": 227,
    "scout_alarm": 63,
}

#: The "Typical Example" column of Table 2, as executable recipes.
TABLE2_EXAMPLES: tuple[Recipe, ...] = (
    Recipe(
        name="nest-protect-smoke-lights",
        trigger_variable="env:smoke",
        trigger_value="detected",
        action_device="hue_lights",
        action_command="on",
    ),
    Recipe(
        name="wemo-off-when-away",
        trigger_variable="env:occupancy",
        trigger_value="absent",
        action_device="wemo_insight",
        action_command="off",
    ),
    Recipe(
        name="scout-alarm-camera",
        trigger_variable="dev:scout_alarm",
        trigger_value="alarm",
        action_device="manything_camera",
        action_command="record",
    ),
)


def generate_corpus(
    rng: random.Random,
    trigger_pool: dict[str, tuple[str, ...]],
    actuators: dict[str, tuple[str, ...]],
    count: int,
    conflict_fraction: float = 0.0,
) -> list[Recipe]:
    """Generate ``count`` synthetic recipes over the given vocabulary.

    ``trigger_pool`` maps trigger variables to their possible values and
    ``actuators`` maps actuatable devices to their command sets.  A
    ``conflict_fraction`` of the corpus is generated as deliberate
    conflicting pairs (same trigger, opposing commands) so conflict-
    detection recall is measurable with known ground truth (bench E2).
    """
    if not trigger_pool or not actuators:
        raise ValueError("need at least one trigger variable and one actuator")
    if not 0.0 <= conflict_fraction <= 1.0:
        raise ValueError("conflict_fraction must be in [0, 1]")
    from repro.policy.conflicts import OPPOSING_COMMANDS

    recipes: list[Recipe] = []
    conflict_budget = int(count * conflict_fraction) // 2 * 2  # pairs

    # Deliberate conflicting pairs first.
    opposing = sorted(tuple(sorted(p)) for p in OPPOSING_COMMANDS)
    pair_candidates = [
        (device, a, b)
        for device, commands in sorted(actuators.items())
        for a, b in opposing
        if a in commands and b in commands
    ]
    made = 0
    while made < conflict_budget and pair_candidates:
        device, cmd_a, cmd_b = pair_candidates[rng.randrange(len(pair_candidates))]
        variable = rng.choice(sorted(trigger_pool))
        value = rng.choice(trigger_pool[variable])
        index = len(recipes)
        recipes.append(
            Recipe(f"conflict-{index}-a", variable, value, device, cmd_a)
        )
        recipes.append(
            Recipe(f"conflict-{index}-b", variable, value, device, cmd_b)
        )
        made += 2

    # Independent filler recipes: exact duplicates are avoided, but
    # accidental conflicts may (realistically) occur -- users publishing
    # recipes do not coordinate, which is exactly section 3.1's critique.
    used: set[tuple[str, str, str, str]] = {
        (r.action_device, r.trigger_variable, r.trigger_value, r.action_command)
        for r in recipes
    }
    attempts = 0
    while len(recipes) < count and attempts < count * 50:
        attempts += 1
        variable = rng.choice(sorted(trigger_pool))
        value = rng.choice(trigger_pool[variable])
        device = rng.choice(sorted(actuators))
        command = rng.choice(actuators[device])
        if (device, variable, value, command) in used:
            continue
        used.add((device, variable, value, command))
        recipes.append(
            Recipe(f"recipe-{len(recipes)}", variable, value, device, command)
        )
    return recipes


# ----------------------------------------------------------------------
# Translation into the FSM abstraction
# ----------------------------------------------------------------------
def recipe_to_guard_rules(
    recipe: Recipe,
    domain_values: tuple[str, ...],
    priority: int = 100,
) -> list[PostureRule]:
    """Compile a recipe into FSM guard rules.

    The security reading of "IF cond THEN device.cmd" is Fig. 5's: the
    command may flow *only* while the condition holds.  For every other
    value of the trigger variable we emit a rule giving the actuator a
    command-filter posture that drops the command.

    Only environment/context triggers translate directly (``dev:`` triggers
    first need the device state mirrored into the global view; the
    controller does that, see :mod:`repro.core.view`).
    """
    rules = []
    for value in domain_values:
        if value == recipe.trigger_value:
            continue
        rules.append(
            PostureRule(
                predicate=StatePredicate.make({recipe.trigger_variable: value}),
                device=recipe.action_device,
                posture=block_commands(
                    recipe.action_command,
                    name=f"guard-{recipe.name}-{value}",
                ),
                priority=priority,
            )
        )
    return rules


# ----------------------------------------------------------------------
# Runtime engine
# ----------------------------------------------------------------------
@dataclass
class RecipeFiring:
    at: float
    recipe: Recipe
    delivered: bool = True


class AutomationHub(Node):
    """The user's automation endpoint (IFTTT/SmartThings stand-in).

    It holds recipes and *executes* them by sending command packets through
    the network -- which is what lets a µmbox on the path veto an unsafe
    firing, and what lets an attacker weaponize a benign recipe (the
    section 2.1 thermal break-in).

    Pairing: the hub is assumed to have been paired out-of-band with each
    actuator it controls, so it owns a valid session token per device
    (:meth:`pair`).  Commands still travel the network.
    """

    def __init__(self, name: str, sim: "Simulator") -> None:
        super().__init__(name, sim)
        self.recipes: list[Recipe] = []
        self.firings: list[RecipeFiring] = []
        self._sessions: dict[str, str] = {}
        self._device_state: Callable[[str], str | None] | None = None

    def pair(self, device: "IoTDevice") -> None:
        """Establish an owner session with a device (out-of-band setup)."""
        token = f"{self.name}-pair-{device.name}"
        device.sessions[token] = "owner"
        self._sessions[device.name] = token

    def add_recipe(self, recipe: Recipe) -> None:
        self.recipes.append(recipe)

    def watch_environment(self, env: "Environment") -> None:
        """Fire env-triggered recipes on level changes."""
        env.on_level_change(self._on_env_change)

    def watch_devices(self, state_of: Callable[[str], str | None], poll: float = 1.0) -> None:
        """Fire device-state recipes by polling a state accessor.

        Edge-triggered: a recipe fires when the device *transitions into*
        the trigger state, not merely because it is already there when the
        watch starts (IFTTT semantics -- "If Alarm is Triggered", not
        "while the alarm happens to be on").
        """
        self._device_state = state_of

        def watched_devices() -> set[str]:
            return {
                recipe.trigger_variable[4:]
                for recipe in self.recipes
                if recipe.trigger_variable.startswith("dev:")
            }

        # Seed with the current states so startup is not a "transition".
        last: dict[str, str | None] = {
            device: state_of(device) for device in watched_devices()
        }

        def tick() -> None:
            current_states = {
                device: state_of(device) for device in watched_devices()
            }
            for recipe in self.recipes:
                if not recipe.trigger_variable.startswith("dev:"):
                    continue
                device = recipe.trigger_variable[4:]
                current = current_states[device]
                if current == recipe.trigger_value and last.get(device) != current:
                    self._fire(recipe)
            last.update(current_states)

        self.sim.every(poll, tick)

    def _on_env_change(self, variable: str, level: str) -> None:
        key = f"env:{variable}"
        for recipe in self.recipes:
            if recipe.trigger_variable == key and recipe.trigger_value == level:
                self._fire(recipe)

    def _fire(self, recipe: Recipe) -> None:
        packet = protocol.command(
            self.name,
            recipe.action_device,
            recipe.action_command,
            session=self._sessions.get(recipe.action_device),
        )
        delivered = bool(self.ports) and self.send(packet, next(iter(self.ports)))
        self.firings.append(RecipeFiring(self.sim.now, recipe, delivered))

    def firings_of(self, recipe_name: str) -> list[RecipeFiring]:
        return [f for f in self.firings if f.recipe.name == recipe_name]
