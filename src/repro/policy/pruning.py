"""State-space pruning (paper section 3.2, closing paragraph).

"We believe that in practice it might be possible to prune and collapse
this giant FSM by exploiting some domain-specific opportunities.  For
example, if we know that two specific device types are inherently
independent, or if the intended security posture is the same for a set of
similar states, then we can potentially prune the state space."

Two reductions are implemented, both *sound* (lookup results are provably
identical to the brute-force FSM -- tests verify this with hypothesis):

1. **Independence projection**: a device's posture can only depend on the
   variables its rules actually test.  Instead of one table over the full
   product space we keep one small table per device over its *relevant*
   variables.  Storage falls from ``prod(all domains)`` to
   ``sum_D prod(relevant domains of D)``.

2. **Posture collapsing**: states mapping to identical posture assignments
   are merged into equivalence classes; the number of classes is bounded by
   the number of distinct postures, not the number of states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from repro.policy.context import SystemState
from repro.policy.fsm import PolicyFSM
from repro.policy.posture import Posture


def relevant_variables(fsm: PolicyFSM, device: str) -> set[str]:
    """The variables that can influence ``device``'s posture."""
    refs: set[str] = set()
    for rule in fsm.rules_for(device):
        refs.update(rule.predicate.variables())
    return refs


def independence_groups(fsm: PolicyFSM) -> list[set[str]]:
    """Partition variables into groups coupled through some rule.

    Two variables are dependent when one rule's predicate tests both, or
    when both influence the same device's posture.  Independent groups can
    be monitored and updated by separate (local) controllers -- the
    hierarchy of section 5.1 builds on exactly this partition.
    """
    graph = nx.Graph()
    graph.add_nodes_from(v.key for v in fsm.space.variables())
    for device in fsm.devices:
        refs = sorted(relevant_variables(fsm, device))
        # The device's own context is coupled to everything deciding it.
        own = f"ctx:{device}"
        if own in graph:
            refs.append(own)
        for a, b in zip(refs, refs[1:]):
            graph.add_edge(a, b)
    return [set(component) for component in nx.connected_components(graph)]


@dataclass
class ProjectedTable:
    """One device's posture decision table over its relevant variables."""

    device: str
    variables: tuple[str, ...]
    table: dict[SystemState, Posture]
    default: Posture

    def lookup(self, state: SystemState) -> Posture:
        projected = state.project(self.variables)
        return self.table.get(projected, self.default)

    @property
    def size(self) -> int:
        return len(self.table)

    def distinct_postures(self) -> set[Posture]:
        return set(self.table.values()) | {self.default}


_NO_DEVICES: frozenset[str] = frozenset()


class PrunedPolicy:
    """The FSM after independence projection.

    Semantically identical to the source FSM (same ``posture_for`` results)
    but with per-device tables whose joint size is typically orders of
    magnitude below ``|S|``.

    Alongside the tables it maintains a **reverse index** mapping each
    policy variable key to the set of devices whose posture can depend on
    it.  The controller's reactive pipeline uses it to turn "view key K
    changed" into the affected device set in O(1) instead of scanning
    every device's rule list.
    """

    def __init__(self, fsm: PolicyFSM) -> None:
        self.fsm = fsm
        self.tables: dict[str, ProjectedTable] = {}
        #: variable key -> devices whose rules reference it
        self.affected: dict[str, set[str]] = {}
        for device in fsm.devices:
            self._set_table(device, self._project(device))

    def _set_table(self, device: str, table: ProjectedTable) -> None:
        old = self.tables.get(device)
        if old is not None:
            for key in old.variables:
                bucket = self.affected.get(key)
                if bucket is not None:
                    bucket.discard(device)
        self.tables[device] = table
        for key in table.variables:
            self.affected.setdefault(key, set()).add(device)

    def devices_affected_by(self, key: str) -> frozenset[str] | set[str]:
        """Devices whose posture may change when variable ``key`` changes."""
        return self.affected.get(key, _NO_DEVICES)

    def add_rule(self, rule) -> None:
        """Incrementally incorporate a runtime rule.

        A :class:`PostureRule` binds exactly one device, so only that
        device's projected table (and its reverse-index entries) can
        change; every other table depends only on its own rules and the
        (unchanged) domains.  Hypothesis property tests verify lookups
        stay identical to a from-scratch rebuild.
        """
        self.fsm.add_rule(rule)
        self._set_table(rule.device, self._project(rule.device))

    def _project(self, device: str) -> ProjectedTable:
        variables = tuple(sorted(relevant_variables(self.fsm, device)))
        domains = [self.fsm.space.domain_of(key) for key in variables]
        table: dict[SystemState, Posture] = {}

        def rec(index: int, acc: dict[str, str]) -> None:
            if index == len(domains):
                projected = SystemState(acc)
                posture = self._rule_lookup(device, projected)
                if posture is not self.fsm.default_posture:
                    table[projected] = posture
                return
            for value in domains[index].values:
                acc[variables[index]] = value
                rec(index + 1, acc)
            acc.pop(variables[index], None)

        rec(0, {})
        return ProjectedTable(
            device=device,
            variables=variables,
            table=table,
            default=self.fsm.default_posture,
        )

    def _rule_lookup(self, device: str, projected: SystemState) -> Posture:
        """Rule lookup against a projected state.

        Sound because every rule for ``device`` only references variables
        inside the projection (by construction of ``relevant_variables``).
        """
        for rule in self.fsm.rules_for(device):
            if rule.predicate.matches(projected):
                return rule.posture
        return self.fsm.default_posture

    def posture_for(self, state: SystemState, device: str) -> Posture:
        table = self.tables.get(device)
        if table is None:
            return self.fsm.default_posture
        return table.lookup(state)

    def total_entries(self) -> int:
        """Joint stored size across all per-device tables."""
        return sum(t.size for t in self.tables.values())


@dataclass
class PruningReport:
    """The E1 measurement: brute force vs pruned vs collapsed sizes."""

    naive_states: int
    devices: int
    variables: int
    projected_entries: int
    projected_worst_case: int
    independence_group_count: int
    largest_group: int
    collapsed_classes: int | None = None
    per_device: dict[str, int] = field(default_factory=dict)

    @property
    def reduction_factor(self) -> float:
        if self.projected_entries == 0:
            return float("inf") if self.naive_states else 1.0
        return self.naive_states / self.projected_entries


def collapse_classes(fsm: PolicyFSM, enumerate_limit: int = 200_000) -> int | None:
    """Exact count of posture-equivalence classes, or None when |S| is too
    large to enumerate within the limit."""
    if fsm.state_count() > enumerate_limit:
        return None
    seen: set[tuple[tuple[str, str], ...]] = set()
    for state in fsm.enumerate_states():
        assignment = tuple(
            (device, posture.name)
            for device, posture in sorted(fsm.postures(state).items())
        )
        seen.add(assignment)
    return len(seen)


def analyze(fsm: PolicyFSM, enumerate_limit: int = 200_000) -> PruningReport:
    """Run both reductions and report the sizes (bench E1's core)."""
    pruned = PrunedPolicy(fsm)
    groups = independence_groups(fsm)
    per_device = {d: t.size for d, t in pruned.tables.items()}
    worst = 0
    for device in fsm.devices:
        variables = relevant_variables(fsm, device)
        worst += math.prod(
            fsm.space.domain_of(key).size for key in variables
        ) if variables else 1
    return PruningReport(
        naive_states=fsm.state_count(),
        devices=len(fsm.devices),
        variables=len(fsm.space.domains),
        projected_entries=pruned.total_entries(),
        projected_worst_case=worst,
        independence_group_count=len(groups),
        largest_group=max((len(g) for g in groups), default=0),
        collapsed_classes=collapse_classes(fsm, enumerate_limit),
        per_device=per_device,
    )
