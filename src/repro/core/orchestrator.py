"""Posture orchestration: policy decisions become running defences.

The orchestrator owns the mechanical half of enforcement: given "device D
gets posture P", it (a) deploys/reconfigures the µmbox through the manager
and (b) installs the tunnel and bypass flow rules at the device's edge
switch so D's traffic actually traverses the µmbox.

Flow-rule scheme per secured device (priorities matter):

====  =========================================  =======================
prio  match                                      action
====  =========================================  =======================
 900  dst=D, in_port=cluster_port                forward(device_port)
 890  src=D, in_port=cluster_port                controller (reactive fwd)
 500  dst=D                                      tunnel(mbox, cluster_port)
 500  src=D                                      tunnel(mbox, cluster_port)
====  =========================================  =======================

Inspected packets return from the cluster on ``cluster_port`` and hit the
900/890 bypasses, which is what breaks the re-tunnelling loop.  Device-to-
device traffic is inspected by the *destination's* µmbox (the dst rule is
installed ahead of the src rule at equal priority/specificity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.mboxes.manager import MboxManager
from repro.obs import COUNT_BUCKETS
from repro.policy.posture import MboxSpec, Posture
from repro.sdn.flowrule import Action, FlowMatch, FlowRule
from repro.sdn.tunnel import TunnelTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.switch import Switch
    from repro.netsim.simulator import Simulator
    from repro.sdn.consistency import ConsistentUpdater

BYPASS_DST_PRIORITY = 900
BYPASS_SRC_PRIORITY = 890
TUNNEL_PRIORITY = 500


@dataclass
class SwitchAttachment:
    """Where one device hangs: its edge switch and the relevant ports."""

    switch: "Switch"
    device_port: int
    cluster_port: int


@dataclass
class OrchestrationRecord:
    device: str
    posture: str
    at: float
    tunnelled: bool


class PostureOrchestrator:
    """Applies posture assignments to the data plane."""

    def __init__(
        self,
        sim: "Simulator",
        manager: MboxManager,
        attachments: dict[str, SwitchAttachment],
        updater: "ConsistentUpdater | None" = None,
    ) -> None:
        self.sim = sim
        self.manager = manager
        self.attachments = dict(attachments)
        #: When set, flow-rule changes go through two-phase consistent
        #: updates (whole-switch epochs) instead of direct installation --
        #: no packet ever sees a mix of old and new tunnel rules.
        self.updater = updater
        self._rule_specs: dict[str, list[FlowRule]] = {}
        self.tunnels = TunnelTable()
        self.current: dict[str, Posture] = {}
        self.records: list[OrchestrationRecord] = []
        #: Devices whose posture an administrator pinned: the policy loop
        #: must not override these (it may still *observe* the device).
        self.pinned: set[str] = set()
        # Observability: actuation gauges plus the per-switch rule batch
        # size distribution (one observation per flow push).
        metrics = sim.metrics
        self.metric_labels = {"orchestrator": metrics.unique("orchestrator")}
        metrics.gauge(
            "orchestrator_applies", fn=lambda: len(self.records), **self.metric_labels
        )
        metrics.gauge(
            "orchestrator_tunnelled", fn=lambda: len(self.tunnels), **self.metric_labels
        )
        metrics.gauge(
            "orchestrator_pinned", fn=lambda: len(self.pinned), **self.metric_labels
        )
        self._h_rules_batch = metrics.histogram(
            "flow_rules_per_batch", bounds=COUNT_BUCKETS, **self.metric_labels
        )

    # ------------------------------------------------------------------
    def attach(self, device: str, attachment: SwitchAttachment) -> None:
        self.attachments[device] = attachment

    def posture_of(self, device: str) -> Posture | None:
        return self.current.get(device)

    # ------------------------------------------------------------------
    def pin(self, device: str) -> None:
        """Mark the device's posture as administratively pinned."""
        self.pinned.add(device)

    def unpin(self, device: str) -> None:
        self.pinned.discard(device)

    def apply(self, device: str, posture: Posture) -> OrchestrationRecord | None:
        """Make ``posture`` effective for ``device``.  Idempotent."""
        records = self.apply_many([(device, posture)])
        return records[0] if records else None

    def apply_many(
        self,
        assignments: list[tuple[str, Posture]],
        traces: dict[str, int] | None = None,
    ) -> list[OrchestrationRecord]:
        """Batched actuation: apply a whole evaluation round's postures.

        Data-plane updates are coalesced per switch: in direct mode every
        switch receives one rule batch (one table re-sort); in consistent
        mode every touched switch receives exactly one two-phase epoch,
        however many of its devices changed posture this round.

        ``traces`` optionally maps devices to causal-trace ids; each traced
        device gets an ``actuate`` span (posture deploy latency) and its
        switch's flow push gets a ``flow-install`` or ``epoch-commit`` span.
        """
        traces = traces or {}
        tracer = self.sim.tracer
        records: list[OrchestrationRecord] = []
        installs: dict[str, tuple["Switch", list[FlowRule]]] = {}
        epoch_switches: dict[str, "Switch"] = {}
        #: switch name -> trace ids whose posture change touched its table
        switch_traces: dict[str, list[int]] = {}
        for device, posture in assignments:
            if self.current.get(device) == posture:
                continue
            attachment = self.attachments.get(device)
            if attachment is None:
                raise KeyError(f"no switch attachment registered for {device!r}")
            trace = traces.get(device)
            now = self.sim.now
            flow_change = False

            if posture.is_permissive:
                self._remove_tunnel(device, attachment, epoch_switches)
                self.manager.teardown(device)
                self.tunnels.unbind(device)
                ready_at = now
                operation = "teardown"
                flow_change = True
            else:
                deploy = self.manager.deploy(device, posture)
                mbox_name = self.manager.host.mboxes[device].name
                if device not in self.tunnels:
                    self._install_tunnel(device, attachment, installs, epoch_switches)
                    flow_change = True
                self.tunnels.bind(device, mbox_name)
                ready_at = deploy.ready_at
                operation = deploy.operation

            if trace is not None:
                tracer.span(
                    trace,
                    "actuate",
                    now,
                    ready_at,
                    device=device,
                    posture=posture.name,
                    operation=operation,
                )
                if flow_change:
                    switch_traces.setdefault(attachment.switch.name, []).append(trace)

            previous = self.current.get(device)
            self.current[device] = posture
            self.sim.journal.record(
                "posture",
                device=device,
                trace=trace,
                posture=posture.name,
                summary=posture.summary(),
                previous=previous.name if previous is not None else "",
                operation=operation,
                ready_at=ready_at,
            )
            record = OrchestrationRecord(
                device=device,
                posture=posture.name,
                at=self.sim.now,
                tunnelled=not posture.is_permissive,
            )
            self.records.append(record)
            records.append(record)
        for switch, rules in installs.values():
            switch.install_many(rules)
            self._h_rules_batch.observe(len(rules))
            switch_trace_ids = switch_traces.get(switch.name, ())
            self.sim.journal.record(
                "flow-install",
                trace=switch_trace_ids[0] if switch_trace_ids else None,
                switch=switch.name,
                rules=len(rules),
            )
            for trace in switch_trace_ids:
                tracer.span(
                    trace,
                    "flow-install",
                    self.sim.now,
                    self.sim.now,
                    switch=switch.name,
                    rules=len(rules),
                )
        for switch in epoch_switches.values():
            self._push_epoch(switch, switch_traces.get(switch.name, ()))
        return records

    # ------------------------------------------------------------------
    def repin(self, device: str) -> bool:
        """Re-pin a device's chain onto its freshly restarted µmbox.

        Called by the manager's recovery path: the replacement instance
        has a new name, so the tunnel binding is refreshed and the edge
        switch's rules re-pushed (one epoch in consistent mode).  Returns
        False when the device has no active chain to re-pin.
        """
        posture = self.current.get(device)
        mbox = self.manager.host.mboxes.get(device)
        attachment = self.attachments.get(device)
        if posture is None or posture.is_permissive or mbox is None or attachment is None:
            return False
        self.tunnels.bind(device, mbox.name)
        self.sim.journal.record(
            "chain-repin",
            device=device,
            mbox=mbox.name,
            posture=posture.name,
            switch=attachment.switch.name,
        )
        if self.updater is not None:
            self._rule_specs.setdefault(device, [])
            self._push_epoch(attachment.switch)
        else:
            # Direct mode: rules are keyed by device/priority, not by mbox
            # instance, so a re-install refreshes them idempotently.
            attachment.switch.remove_where(
                lambda r: device in (r.match.src, r.match.dst)
                and r.priority
                in (BYPASS_DST_PRIORITY, BYPASS_SRC_PRIORITY, TUNNEL_PRIORITY)
            )
            attachment.switch.install_many(self._device_rules(device, attachment))
        return True

    # ------------------------------------------------------------------
    def _device_rules(self, device: str, att: SwitchAttachment) -> list[FlowRule]:
        return [
            # Returned-from-cluster packets go through the controller's
            # forwarder: only it knows whether the *destination's* µmbox has
            # inspected the packet yet (device-to-device traffic must visit
            # both µmboxes; a static forward here would skip the second).
            FlowRule(
                match=FlowMatch(dst=device, in_port=att.cluster_port),
                actions=(Action.controller(),),
                priority=BYPASS_DST_PRIORITY,
            ),
            FlowRule(
                match=FlowMatch(src=device, in_port=att.cluster_port),
                actions=(Action.controller(),),
                priority=BYPASS_SRC_PRIORITY,
            ),
            FlowRule(
                match=FlowMatch(dst=device),
                actions=(
                    Action.tunnel(device, att.cluster_port, via=self.manager.host.name),
                ),
                priority=TUNNEL_PRIORITY,
            ),
            FlowRule(
                match=FlowMatch(src=device),
                actions=(
                    Action.tunnel(device, att.cluster_port, via=self.manager.host.name),
                ),
                priority=TUNNEL_PRIORITY,
            ),
        ]

    def _install_tunnel(
        self,
        device: str,
        att: SwitchAttachment,
        installs: dict[str, tuple["Switch", list[FlowRule]]],
        epoch_switches: dict[str, "Switch"],
    ) -> None:
        if self.updater is not None:
            self._rule_specs[device] = []
            epoch_switches[att.switch.name] = att.switch
            return
        __, rules = installs.setdefault(att.switch.name, (att.switch, []))
        rules.extend(self._device_rules(device, att))

    def _remove_tunnel(
        self,
        device: str,
        att: SwitchAttachment,
        epoch_switches: dict[str, "Switch"],
    ) -> None:
        if self.updater is not None:
            self._rule_specs.pop(device, None)
            epoch_switches[att.switch.name] = att.switch
            return
        att.switch.remove_where(
            lambda r: device in (r.match.src, r.match.dst)
            and r.priority in (BYPASS_DST_PRIORITY, BYPASS_SRC_PRIORITY, TUNNEL_PRIORITY)
        )

    def _push_epoch(self, switch: "Switch", trace_ids: Iterable[int] = ()) -> None:
        """Consistent mode: push the switch's complete desired rule set as
        one two-phase epoch (fresh FlowRule objects -- the updater stamps
        version tags on them).  Called after the whole round's tunnel
        bindings settle, so removed devices are excluded naturally."""
        assert self.updater is not None
        desired: list[FlowRule] = []
        for device, attachment in self.attachments.items():
            if attachment.switch is not switch:
                continue
            if device in self.tunnels or device in self._rule_specs:
                desired.extend(self._device_rules(device, attachment))
        self._h_rules_batch.observe(len(desired))
        trace_ids = tuple(trace_ids)
        on_committed = None
        if trace_ids:
            tracer = self.sim.tracer
            switch_name = switch.name

            def on_committed(report) -> None:
                for trace in trace_ids:
                    tracer.span(
                        trace,
                        "epoch-commit",
                        report.started_at,
                        report.committed_at,
                        switch=switch_name,
                        version=report.version,
                        rules=report.rules_installed,
                    )

        self.updater.push_two_phase({switch: desired}, on_committed=on_committed)


# ----------------------------------------------------------------------
# Posture recipes: from a mitigation name (Table 1 / signature
# recommendations) to a concrete posture for a given device.
# ----------------------------------------------------------------------
def build_recommended_posture(
    mitigation: str,
    device: str,
    trusted_sources: tuple[str, ...] = (),
    new_password: str = "S3cure!gateway",
    device_username: str = "admin",
    device_password: str = "admin",
    allowed_commands: tuple[str, ...] = (),
    sku: str | None = None,
) -> Posture:
    """Materialize a mitigation name into a posture for ``device``.

    These are the "customized µmboxes" of section 2.2, one recipe per
    Table 1 flaw class.
    """
    if mitigation == "password_proxy":
        return Posture.make(
            "password_proxy",
            MboxSpec.make(
                "password_proxy",
                new_password=new_password,
                device_username=device_username,
                device_password=device_password,
            ),
            MboxSpec.make("rate_limiter", rate=0.5, burst=3.0, match_dport=80),
            description=f"credential gateway for {device}",
        )
    if mitigation == "stateful_firewall":
        return Posture.make(
            "stateful_firewall",
            MboxSpec.make(
                "stateful_firewall",
                trusted_sources=sorted(trusted_sources),
                open_ports=[],
                default="drop",
            ),
            description=f"default-deny inbound for {device}",
        )
    if mitigation == "command_whitelist":
        return Posture.make(
            "command_whitelist",
            MboxSpec.make(
                "command_whitelist",
                allow=sorted(allowed_commands),
                allowed_sources=sorted(trusted_sources),
            ),
            description=f"actuator command whitelist for {device}",
        )
    if mitigation == "dns_guard":
        return Posture.make(
            "dns_guard",
            MboxSpec.make(
                "dns_guard",
                local_sources=sorted(trusted_sources),
                max_queries_per_second=5.0,
            ),
            description=f"resolver abuse guard for {device}",
        )
    if mitigation == "quarantine":
        return Posture.make(
            "quarantine",
            MboxSpec.make("stateful_firewall", trusted_sources=[], open_ports=[], default="drop"),
            description=f"full isolation of {device}",
        )
    if mitigation == "monitor":
        modules = [
            MboxSpec.make("telemetry_tap"),
            MboxSpec.make("packet_logger"),
            MboxSpec.make("login_monitor"),
        ]
        if sku:
            modules.append(MboxSpec.make("signature_ids", sku=sku, drop_on_match=True))
        return Posture.make("monitor", *modules, description=f"observe {device}")
    raise KeyError(f"unknown mitigation {mitigation!r}")
