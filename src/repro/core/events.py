"""The controller-side event bus.

Alerts from µmboxes, context reports from sensors, and lifecycle events
from the manager all flow through one bus so experiments can trace cause
(event) to effect (posture change) with timestamps.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator

_EVENT_IDS = itertools.count(1)


@dataclass(slots=True)
class SecurityEvent:
    """Anything the controller might react to."""

    at: float
    kind: str          # "alert" | "context" | "telemetry" | "lifecycle" | ...
    source: str        # node or subsystem name
    device: str = ""   # the device concerned, when applicable
    body: dict[str, Any] = field(default_factory=dict)
    event_id: int = field(default_factory=lambda: next(_EVENT_IDS))


EventCallback = Callable[[SecurityEvent], None]


class EventBus:
    """Kind-keyed publish/subscribe with a bounded history."""

    def __init__(self, sim: "Simulator", history_limit: int = 10_000) -> None:
        self.sim = sim
        self.history_limit = history_limit
        self.history: list[SecurityEvent] = []
        # Subscriber lists are stored as immutable tuples so ``publish``
        # can iterate them directly: a subscribe() during delivery swaps
        # in a *new* tuple, leaving the in-flight iteration untouched --
        # the same snapshot semantics the old per-publish list() copies
        # provided, without the per-event allocation.
        self._subscribers: dict[str, tuple[EventCallback, ...]] = defaultdict(tuple)
        self._wildcard: tuple[EventCallback, ...] = ()
        self.published = 0
        #: Lifetime per-kind publish counters.  Unlike ``history`` these are
        #: never trimmed, so long runs can still report totals (e.g. how
        #: many pipeline rounds ran) without retaining every event.
        self.counts: dict[str, int] = defaultdict(int)

    def subscribe(self, kind: str, callback: EventCallback) -> None:
        """Subscribe to one kind, or ``"*"`` for everything."""
        if kind == "*":
            self._wildcard = self._wildcard + (callback,)
        else:
            self._subscribers[kind] = self._subscribers[kind] + (callback,)

    def publish(
        self,
        kind: str,
        source: str,
        device: str = "",
        **body: Any,
    ) -> SecurityEvent:
        event = SecurityEvent(
            at=self.sim.now, kind=kind, source=source, device=device, body=body
        )
        self.published += 1
        self.counts[kind] += 1
        self.history.append(event)
        if len(self.history) > self.history_limit:
            del self.history[: len(self.history) // 2]
        for callback in self._subscribers.get(kind, ()):
            callback(event)
        for callback in self._wildcard:
            callback(event)
        return event

    def count(self, kind: str) -> int:
        """Lifetime number of events published with ``kind``."""
        return self.counts.get(kind, 0)

    def events(self, kind: str | None = None, device: str | None = None) -> list[SecurityEvent]:
        return [
            e
            for e in self.history
            if (kind is None or e.kind == kind)
            and (device is None or e.device == device)
        ]
