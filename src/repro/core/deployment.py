"""The deployment harness: a complete secured (or unsecured) smart home.

Assembles the Figure 2 architecture end to end: edge switch, security
cluster (:class:`MboxHost` + :class:`MboxManager`), automation hub,
internet uplink, physical environment, devices, and -- when
``with_iotsec`` -- the controller, policy FSM and orchestrator.  With
``with_iotsec=False`` the same home runs "current world" style: all
traffic is forwarded reactively with no interposition, which is every
bench's baseline arm.

Typical use::

    dep = SecuredDeployment.build()
    cam = dep.add_device(smart_camera, "cam")
    plug = dep.add_device(smart_plug, "plug", load={"heat_watts": 1500.0})
    attacker = dep.add_attacker()
    dep.finalize()            # builds policy (if none given) + controller
    dep.enforce_baseline()    # monitor posture on every device
    ... launch exploits ...
    dep.run(until=120.0)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.switch import Switch

from repro.attacks.attacker import Attacker
from repro.core.controller import IoTSecController
from repro.core.ha import Checkpointer, CheckpointStore, StandbyController, restore_controller
from repro.core.overload import IngestConfig
from repro.core.orchestrator import (
    PostureOrchestrator,
    SwitchAttachment,
    build_recommended_posture,
)
from repro.devices.base import IoTDevice
from repro.environment.engine import Environment
from repro.environment.physics import LightProcess, SmokeProcess, ThermalProcess
from repro.mboxes.base import Alert, MboxHost, Verdict
from repro.mboxes.manager import MboxManager
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Topology
from repro.policy.builder import PolicyBuilder
from repro.policy.context import COMPROMISED, SUSPICIOUS
from repro.policy.fsm import PolicyFSM
from repro.policy.ifttt import AutomationHub
from repro.policy.posture import Posture
from repro.sdn.channel import ControlChannel

if TYPE_CHECKING:  # pragma: no cover
    from repro.learning.repository import CrowdRepository
    from repro.obs.health import HealthPlane
    from repro.obs.stream import HostStream, StreamConfig


def default_home_environment(sim: Simulator, tick: float = 1.0) -> Environment:
    """The standard simulated home: thermal, smoke, light, occupancy."""
    env = Environment(sim, tick=tick)
    env.add_continuous(
        "temperature",
        initial=21.0,
        thresholds=(10.0, 26.0),
        level_names=("low", "normal", "high"),
        minimum=-30.0,
        maximum=90.0,
    )
    env.add_continuous(
        "smoke",
        initial=0.0,
        thresholds=(0.5,),
        level_names=("clear", "detected"),
        minimum=0.0,
        maximum=10.0,
    )
    env.add_continuous(
        "illuminance",
        initial=0.0,
        thresholds=(100.0,),
        level_names=("dark", "bright"),
        minimum=0.0,
    )
    env.add_discrete("occupancy", ("absent", "present"))
    env.add_discrete("window", ("closed", "open"))
    env.add_discrete("door", ("locked", "unlocked"))
    env.add_process(ThermalProcess(outside=10.0))
    env.add_process(SmokeProcess())
    env.add_process(LightProcess())
    return env


class SecuredDeployment:
    """One smart home/enterprise site, optionally protected by IoTSec."""

    EDGE = "edge"
    CLUSTER = "cluster"
    INTERNET = "internet"
    HUB = "hub"
    CONTROLLER = "controller"
    STANDBY = "standby"

    def __init__(
        self,
        sim: Simulator | None = None,
        policy: PolicyFSM | None = None,
        with_iotsec: bool = True,
        channel_latency: float = 0.002,
        env_tick: float = 1.0,
        consistent_updates: bool = False,
        reliable_control: bool = False,
        health_check_period: float | None = None,
        ingest: IngestConfig | None = None,
        durable_telemetry: bool = False,
        stream_config: "StreamConfig | None" = None,
        checkpointing: bool = False,
        checkpoint_period: float = 5.0,
        standby: bool = False,
        heartbeat_period: float = 0.25,
        failover_timeout: float = 1.0,
        ha_seed: int = 0,
        health: bool = False,
        health_period: float = 5.0,
    ) -> None:
        self.sim = sim or Simulator()
        #: Resilience knobs: ``reliable_control`` gives the alert and
        #: flow-mod paths at-least-once delivery (retry + dedup) so a lossy
        #: or partitioned control channel delays enforcement instead of
        #: silently losing it; ``health_check_period`` starts the µmbox
        #: health sweep that reboots crashed instances and re-pins chains.
        self.reliable_control = reliable_control
        self.health_check_period = health_check_period
        #: Survivability knobs (all strictly opt-in so the default event
        #: schedule is unchanged): ``ingest`` puts the bounded priority
        #: queue in front of alert handling; ``checkpointing`` starts the
        #: periodic snapshot loop (restart capital); ``standby`` also
        #: replicates checkpoints + journal deltas to a hot standby that
        #: takes over on heartbeat timeout.
        self.ingest_config = ingest
        #: Durable telemetry plane (opt-in): the cluster host gets a
        #: store-and-forward buffer in front of the lossy channel and the
        #: controller a stream consumer + dead-letter queue, so alerts
        #: and telemetry survive partitions (replayed in order) instead
        #: of vanishing with the wire.
        self.durable_telemetry = durable_telemetry
        self.stream_config = stream_config
        self.host_stream: "HostStream | None" = None
        self.checkpointing = checkpointing
        self.checkpoint_period = checkpoint_period
        self.standby = standby
        self.heartbeat_period = heartbeat_period
        self.failover_timeout = failover_timeout
        self.ha_seed = ha_seed
        self.checkpoint_store: CheckpointStore | None = None
        self.checkpointer: Checkpointer | None = None
        self.standby_controller: StandbyController | None = None
        #: SLO & health plane (opt-in): online burn-rate evaluation of the
        #: declared security objectives plus per-subsystem rollups.  Inert
        #: when the simulator runs with ``observe=False``.
        self.health_enabled = health
        self.health_period = health_period
        self.health_plane: "HealthPlane | None" = None
        self.topology = Topology(self.sim)
        self.with_iotsec = with_iotsec
        self._given_policy = policy
        self.policy: PolicyFSM | None = policy

        self.edge = self.topology.add_switch(self.EDGE)
        self.internet = self.topology.add_host(self.INTERNET)
        self.hub = AutomationHub(self.HUB, self.sim)
        self.topology.add(self.hub)
        self.topology.connect(self.edge, self.internet, latency=0.010)
        self.topology.connect(self.edge, self.hub, latency=0.002)

        self.env = default_home_environment(self.sim, tick=env_tick)
        self.hub.watch_environment(self.env)

        self.devices: dict[str, IoTDevice] = {}
        self.attackers: dict[str, Attacker] = {}
        self.rooms: dict[str, "Switch"] = {}

        self.channel = ControlChannel(self.sim, latency=channel_latency)
        self.cluster: MboxHost | None = None
        self.manager: MboxManager | None = None
        self.orchestrator: PostureOrchestrator | None = None
        self.controller: IoTSecController | None = None
        self.repository: "CrowdRepository | None" = None

        if with_iotsec:
            self.cluster = MboxHost(
                self.CLUSTER,
                self.sim,
                default_verdict=Verdict.PASS,  # unbound devices flow freely
            )
            self.topology.add(self.cluster)
            self.topology.connect(self.edge, self.cluster, latency=0.001)
            self.manager = MboxManager(self.sim, self.cluster)
            updater = None
            if consistent_updates:
                from repro.sdn.consistency import ConsistentUpdater

                updater = ConsistentUpdater(
                    self.sim, self.channel, reliable=reliable_control
                )
            self.orchestrator = PostureOrchestrator(
                self.sim, self.manager, {}, updater=updater
            )
        else:
            # "Current world": reactive L2 forwarding, nothing interposed.
            self.edge.packet_in_handler = self._plain_forwarder

        self._finalized = False

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, **kwargs: Any) -> "SecuredDeployment":
        return cls(**kwargs)

    def _plain_forwarder(self, switch: Any, packet: Any, in_port: int) -> None:
        port = self.topology.next_hop_port(switch.name, packet.dst)
        if port is not None and port != in_port:
            switch.send(packet, port)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_room(self, name: str, latency: float = 0.001) -> "Switch":
        """Add a per-room/per-floor access switch uplinked to the core.

        Devices placed in a room (``add_device(..., room=name)``) tunnel
        through the room switch toward the shared cluster -- the
        enterprise shape of section 2.2 ("a well-provisioned on-premise
        cluster").
        """
        room = self.topology.add_switch(name)
        self.topology.connect(self.edge, room, latency=latency)
        self.rooms[name] = room
        if self.controller is not None:
            self.controller.adopt_packet_in(room)
        elif not self.with_iotsec:
            room.packet_in_handler = self._plain_forwarder
        return room

    def add_device(
        self,
        factory: Callable[..., IoTDevice],
        name: str,
        latency: float = 0.002,
        pair_with_hub: bool = True,
        room: str | None = None,
        **kwargs: Any,
    ) -> IoTDevice:
        device = factory(name, self.sim, env=self.env, **kwargs)
        self.topology.add(device)
        switch = self.rooms[room] if room is not None else self.edge
        link = self.topology.connect(switch, device, latency=latency)
        self.devices[name] = device
        if pair_with_hub:
            self.hub.pair(device)
        if self.orchestrator is not None:
            # the port where inspected traffic returns: toward the cluster
            # (directly at the core, or via the core uplink from a room)
            toward = self.CLUSTER if room is None else self.EDGE
            cluster_port = switch.port_to(toward)
            assert cluster_port is not None
            self.orchestrator.attach(
                name,
                SwitchAttachment(
                    switch=switch,
                    device_port=link.port_a if link.a is switch else link.port_b,
                    cluster_port=cluster_port,
                ),
            )
        if self.controller is not None:
            self.controller.register_device(device)
        return device

    def add_attacker(self, name: str = "attacker", latency: float = 0.020) -> Attacker:
        attacker = Attacker(name, self.sim)
        self.topology.add(attacker)
        self.topology.connect(self.edge, attacker, latency=latency)
        self.attackers[name] = attacker
        return attacker

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def default_policy(self) -> PolicyFSM:
        """Suspicious devices get locked to trusted sources; compromised
        devices are quarantined.  The 'sensible default' policy."""
        builder = PolicyBuilder()
        for name in sorted(self.devices):
            builder.device(name)
        for var_name, variable in sorted(self.env.variables.items()):
            builder.env(var_name, variable.levels())
        trusted = (self.HUB, self.CONTROLLER)
        for name in sorted(self.devices):
            builder.when(f"ctx:{name}", SUSPICIOUS).give(
                name,
                build_recommended_posture(
                    "stateful_firewall", name, trusted_sources=trusted
                ),
                priority=200,
            )
            builder.when(f"ctx:{name}", COMPROMISED).give(
                name,
                build_recommended_posture("quarantine", name),
                priority=300,
            )
        return builder.build()

    def finalize(self) -> "SecuredDeployment":
        """Create the controller (IoTSec mode) and start physics."""
        if self._finalized:
            return self
        self._finalized = True
        self.env.start()
        if not self.with_iotsec:
            return self
        assert self.orchestrator is not None and self.cluster is not None
        if self.policy is None:
            self.policy = self.default_policy()
        self.controller = IoTSecController(
            name=self.CONTROLLER,
            sim=self.sim,
            policy=self.policy,
            orchestrator=self.orchestrator,
            channel=self.channel,
            topology=self.topology,
            ingest=self.ingest_config,
            durable_telemetry=self.durable_telemetry,
        )
        if self.durable_telemetry:
            from repro.obs.stream import HostStream

            self.host_stream = HostStream(
                self.sim,
                host=self.CLUSTER,
                channel=self.channel,
                controller=self.CONTROLLER,
                config=self.stream_config,
            )
            self.cluster.attach_stream(self.host_stream)
        self.controller.adopt_packet_in(self.edge)
        for room in self.rooms.values():
            self.controller.adopt_packet_in(room)
        self.controller.watch_environment(self.env)
        for device in self.devices.values():
            self.controller.register_device(device)
        # µmbox alerts travel the control channel to the controller.
        self.cluster.alert_sink = self._forward_alert
        # The cluster's context view is the controller's global view.
        self.cluster.view = lambda key: (
            self.controller.view.get(key) if self.controller else None
        )
        # µmbox health: crashed instances are detected by the periodic
        # sweep, rebooted, and their chains re-pinned by the orchestrator.
        if self.health_check_period is not None and self.manager is not None:
            self.manager.on_recovery = lambda device: self.orchestrator.repin(device)
            self.manager.start_health_checks(self.health_check_period)
        self._wire_survivability(self.controller)
        if self.checkpointing or self.standby:
            self.checkpoint_store = CheckpointStore()
            self.checkpointer = Checkpointer(
                self.controller,
                self.checkpoint_store,
                period=self.checkpoint_period,
                channel=self.channel if self.standby else None,
                standby=self.STANDBY if self.standby else None,
                heartbeat_period=self.heartbeat_period if self.standby else None,
            )
        if self.standby:
            self.standby_controller = StandbyController(
                sim=self.sim,
                channel=self.channel,
                orchestrator=self.orchestrator,
                topology=self.topology,
                policy=self.policy,
                devices=self.devices,
                switches=[self.edge, *self.rooms.values()],
                env=self.env,
                name=self.STANDBY,
                primary=self.CONTROLLER,
                ingest=self.ingest_config,
                durable_telemetry=self.durable_telemetry,
                heartbeat_timeout=self.failover_timeout,
                seed=self.ha_seed,
                on_takeover=self._on_takeover,
            )
        if self.health_enabled:
            self.attach_health(self.health_period)
        return self

    def attach_health(self, period: float = 5.0) -> "HealthPlane":
        """Attach (and start) the SLO/health plane.  Idempotent.

        Finalizes the deployment first if needed: the SLO catalog closes
        over the controller, streams and HA components.
        """
        if not self._finalized:
            self.finalize()
        if self.health_plane is None:
            from repro.obs.health import attach_health_plane

            self.health_plane = attach_health_plane(self, period=period)
        return self.health_plane

    def _wire_survivability(self, controller: IoTSecController) -> None:
        """Connect the ingest queue's backpressure to the µmbox host."""
        if controller.ingest is not None and self.cluster is not None:
            controller.ingest.on_shed = self.cluster.set_backpressure

    def _on_takeover(self, controller: IoTSecController) -> None:
        """The standby promoted a new primary: adopt it site-wide.

        The cluster's alert sink and view closures resolve
        ``self.controller`` dynamically, so rebinding the attribute is
        enough for the data path; backpressure and the checkpoint loop
        are re-wired to the new instance (local-only -- the standby seat
        is now empty).
        """
        self.controller = controller
        self._wire_survivability(controller)
        if self.checkpoint_store is not None:
            if self.checkpointer is not None:
                self.checkpointer.stop()
            self.checkpointer = Checkpointer(
                controller, self.checkpoint_store, period=self.checkpoint_period
            )

    # ------------------------------------------------------------------
    # Controller failure / recovery
    # ------------------------------------------------------------------
    def crash_controller(self) -> None:
        """Kill the primary controller (fault injection entry point)."""
        if self.controller is None:
            raise RuntimeError("deployment has no controller to crash")
        if self.checkpointer is not None:
            # The checkpoint loop dies with the process; the store (its
            # "disk") survives for restart.
            self.checkpointer.stop()
            self.checkpointer = None
        self.controller.crash()

    def restart_controller(self) -> IoTSecController:
        """Cold restart from the latest local checkpoint + journal tail."""
        if self.checkpoint_store is None or self.checkpoint_store.latest() is None:
            raise RuntimeError(
                "no checkpoint to restart from (enable checkpointing=True)"
            )
        checkpoint = self.checkpoint_store.latest()
        assert checkpoint is not None
        tail = [
            e.as_dict() for e in self.sim.journal.entries_since(checkpoint.seq)
        ]
        controller = restore_controller(
            sim=self.sim,
            channel=self.channel,
            orchestrator=self.orchestrator,
            topology=self.topology,
            devices=self.devices,
            switches=[self.edge, *self.rooms.values()],
            checkpoint=checkpoint,
            tail=tail,
            name=self.CONTROLLER,
            ingest=self.ingest_config,
            env=self.env,
            durable_telemetry=self.durable_telemetry,
        )
        self.controller = controller
        self._wire_survivability(controller)
        self.checkpointer = Checkpointer(
            controller, self.checkpoint_store, period=self.checkpoint_period
        )
        return controller

    def _forward_alert(self, alert: Alert) -> None:
        if self.host_stream is not None:
            # Durable plane: the alert enters the host's store-and-forward
            # buffer and ships (and re-ships) as an offset-ordered batch
            # until the controller acknowledges it -- partitions delay it,
            # they no longer delete it.
            self.host_stream.offer(
                alert.kind,
                {
                    "device": alert.device,
                    "kind": alert.kind,
                    "mbox": alert.mbox,
                    "detail": dict(alert.detail),
                    "trace": alert.trace_id,
                },
            )
            return
        self.channel.send(
            self.CLUSTER,
            self.CONTROLLER,
            "alert",
            {
                "device": alert.device,
                "kind": alert.kind,
                "mbox": alert.mbox,
                "detail": dict(alert.detail),
                "trace": alert.trace_id,
            },
            # Security alerts are the trigger for every escalation: a lost
            # alert is a lost re-enforcement, so they ride at-least-once
            # when the deployment opts into reliable control.
            reliable=self.reliable_control and alert.kind != "telemetry",
        )

    # ------------------------------------------------------------------
    # Enforcement helpers
    # ------------------------------------------------------------------
    def secure(self, device: str, posture: Posture, pin: bool = True) -> None:
        """Directly apply a posture (administrator action).

        Pinned by default: the policy loop will not override an explicit
        administrator decision (Fig. 4's proxy must survive the context
        escalation that the attack it blocks provokes).
        """
        if self.orchestrator is None:
            raise RuntimeError("deployment built without IoTSec")
        if not self._finalized:
            self.finalize()
        self.orchestrator.apply(device, posture)
        if pin:
            self.orchestrator.pin(device)

    def enforce_baseline(self, monitor: bool = True) -> None:
        """Give every device its policy posture (plus a monitor posture
        where the policy is permissive, so the controller sees context)."""
        if self.controller is None:
            self.finalize()
        assert self.controller is not None and self.orchestrator is not None
        self.controller.enforce_all()
        if monitor:
            # Batched actuation: one apply_many round means one flow-rule
            # push per switch however many devices need a monitor posture.
            assignments = []
            for name, device in self.devices.items():
                current = self.orchestrator.posture_of(name)
                if current is None or current.is_permissive:
                    assignments.append(
                        (name, build_recommended_posture("monitor", name, sku=device.sku))
                    )
            self.orchestrator.apply_many(assignments)

    def apply_hardening_plan(
        self,
        plan: list[tuple[str, str]],
        new_password: str = "S3cure!gateway",
        pin: bool = True,
    ) -> list[str]:
        """Apply an attack-graph hardening plan (device, mitigation) list.

        Returns the devices actually hardened (unknown devices skipped).
        Closes the loop from :meth:`AttackGraphBuilder.hardening_plan` to
        running µmboxes.
        """
        hardened = []
        trusted = (self.HUB, self.CONTROLLER)
        for device, mitigation in plan:
            if device not in self.devices:
                continue
            fw = self.devices[device].firmware
            cred = fw.credentials[0] if fw.credentials else None
            posture = build_recommended_posture(
                mitigation,
                device,
                trusted_sources=trusted,
                new_password=new_password,
                device_username=cred.username if cred else "admin",
                device_password=cred.password if cred else "admin",
                sku=fw.sku,
            )
            self.secure(device, posture, pin=pin)
            hardened.append(device)
        return hardened

    def attach_repository(self, repository: "CrowdRepository") -> None:
        """Feed crowdsourced signatures into this site's IDS µmboxes.

        Two paths: newly deployed IDS µmboxes pull the current signature
        set for their device's SKU; already-running ones receive future
        publications live through the repository's subscription push.
        """
        self.repository = repository
        if self.manager is None:
            return
        self.manager.signature_provider = lambda sku: repository.signatures_for(sku)

        from repro.mboxes.ids import SignatureIDS

        def deliver_to(device_name: str):
            def deliver(signature) -> None:
                mbox = self.cluster.mboxes.get(device_name) if self.cluster else None
                if mbox is None:
                    return
                for element in mbox.elements:
                    if isinstance(element, SignatureIDS):
                        element.add_signature(signature)

            return deliver

        for name, device in self.devices.items():
            repository.subscribe(f"{self.CONTROLLER}:{name}", device.sku, deliver_to(name))

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> None:
        if not self._finalized:
            self.finalize()
        self.sim.run(until=until)

    def alerts(self, device: str | None = None) -> list[Alert]:
        if self.cluster is None:
            return []
        if device is None:
            return list(self.cluster.alerts)
        return self.cluster.alerts_for(device)
