"""The controller's global view.

Section 2.2: "A logically centralized IoTSec controller monitors the
contexts of different devices and the operating environment and generates a
global view for cross-device policy enforcement."

The view is a timestamped key/value store over the unified policy-variable
vocabulary (``ctx:<device>``, ``env:<variable>``) plus device FSM states
(``dev:<device>``).  Change subscribers drive the policy loop; staleness
accounting supports the consistency experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.policy.context import SystemState

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator

ChangeCallback = Callable[[str, str | None, str], None]
DirtyCallback = Callable[[str], None]


@dataclass(slots=True)
class ViewEntry:
    value: str
    updated_at: float
    updates: int = 1


class GlobalView:
    """Timestamped state with change notification."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.entries: dict[str, ViewEntry] = {}
        # Tuples, not lists: _notify iterates them directly and a
        # subscribe() during notification swaps in a new tuple without
        # disturbing in-flight iteration (snapshot semantics, allocation
        # free on the per-change path).
        self._subscribers: tuple[ChangeCallback, ...] = ()
        self._dirty_subscribers: tuple[DirtyCallback, ...] = ()
        self.total_updates = 0

    # ------------------------------------------------------------------
    def set(self, key: str, value: str) -> bool:
        """Record a value; returns True when it changed."""
        self.total_updates += 1
        entry = self.entries.get(key)
        if entry is None:
            self.entries[key] = ViewEntry(value=value, updated_at=self.sim.now)
            self._notify(key, None, value)
            return True
        old = entry.value
        entry.updated_at = self.sim.now
        entry.updates += 1
        if old == value:
            return False
        entry.value = value
        self._notify(key, old, value)
        return True

    def get(self, key: str) -> str | None:
        entry = self.entries.get(key)
        return entry.value if entry else None

    def age(self, key: str) -> float | None:
        """Seconds since the key was last refreshed (None = never seen)."""
        entry = self.entries.get(key)
        return self.sim.now - entry.updated_at if entry else None

    # ------------------------------------------------------------------
    def subscribe(self, callback: ChangeCallback) -> None:
        self._subscribers = self._subscribers + (callback,)

    def subscribe_dirty(self, callback: DirtyCallback) -> None:
        """Lightweight change notification: just the key that went dirty.

        The reactive pipeline's ingest stage subscribes here -- it only
        needs to mark devices dirty, not inspect old/new values, so the
        callback skips building the richer change tuple.
        """
        self._dirty_subscribers = self._dirty_subscribers + (callback,)

    def _notify(self, key: str, old: str | None, new: str) -> None:
        for callback in self._subscribers:
            callback(key, old, new)
        for dirty in self._dirty_subscribers:
            dirty(key)

    # ------------------------------------------------------------------
    def system_state(
        self, keys: Iterable[str], defaults: dict[str, str] | None = None
    ) -> SystemState:
        """The current :class:`SystemState` over the policy's variables.

        Missing keys fall back to ``defaults`` (the policy's domain
        baselines) so the FSM always sees a total assignment.
        """
        defaults = defaults or {}
        assignment = {}
        for key in keys:
            value = self.get(key)
            if value is None:
                value = defaults.get(key, "unknown")
            assignment[key] = value
        return SystemState(assignment)

    def snapshot(self) -> dict[str, str]:
        return {key: entry.value for key, entry in self.entries.items()}

    def restore(self, snapshot: dict[str, str]) -> None:
        """Load a snapshot *silently* -- no change notification.

        Used by checkpoint restore: the restored controller reconciles
        explicitly afterwards, so firing per-key callbacks here would
        trigger a spurious evaluation storm against a half-built view.
        """
        for key, value in snapshot.items():
            self.entries[key] = ViewEntry(value=value, updated_at=self.sim.now)

    def __repr__(self) -> str:
        return f"GlobalView({len(self.entries)} keys, {self.total_updates} updates)"
