"""Controller survivability: checkpoint/restore and hot-standby failover.

The paper's logically centralized controller is a single point of failure:
if the process dies, every escalated context, every sliding alert window
and every runtime policy rule dies with it -- and the data plane keeps
enforcing a posture nobody remembers deciding.  This module makes the
controller a service that can die and come back:

- :class:`Checkpoint` -- a deterministic, versioned snapshot of the
  controller's security state (global view, escalation window timestamps,
  pipeline dirty-set, the full serialized policy including runtime rules,
  epoch counters) with a stable content digest.  Two controllers holding
  the same state produce byte-identical checkpoints.
- :class:`Checkpointer` -- the primary-side HA agent: periodic
  ``sim.every``-driven capture into a :class:`CheckpointStore` (the local
  "disk"), plus optional replication to a standby endpoint over the lossy
  control channel -- checkpoints and journal deltas ride at-least-once,
  heartbeats fire-and-forget (a retried heartbeat is a lie about
  liveness).
- :func:`restore_controller` -- cold restart: rebuild a controller from
  the latest checkpoint and replay the journal tail (``sim.journal`` as
  write-ahead log) from the checkpoint's sequence number, reconstructing
  contexts, escalation windows and runtime rules recorded after the last
  snapshot.
- :class:`StandbyController` -- hot standby: consumes replicated
  checkpoints + deltas, detects primary death by heartbeat timeout
  (seeded jitter, so fleets don't stampede), and takes over: registers
  under the primary's endpoint name (pending at-least-once alert
  retransmissions deliver to the new incumbent automatically), restores
  state, re-adopts the switches, reconciles installed flow rules against
  the restored policy (diff through ``apply_many`` -> minimal re-push,
  no full re-enforce) and journals the whole ``failover`` causal chain
  for ``repro incident``.

What restore cannot recover is journaled, not hidden: environment sensor
readings are not write-ahead logged (they heal on the next sensor tick),
and a rule added *and* lost inside the same unreplicated window is gone --
the journal's ``failover-complete`` record carries the replayed counts so
the gap is measurable.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.core.controller import DEFAULT_ESCALATIONS, EscalationRule, IoTSecController
from repro.policy.fsm import PostureRule, StatePredicate
from repro.policy.serialization import (
    policy_from_dict,
    policy_to_dict,
    posture_from_dict,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.orchestrator import PostureOrchestrator
    from repro.core.overload import IngestConfig
    from repro.devices.base import IoTDevice
    from repro.environment.engine import Environment
    from repro.netsim.simulator import Simulator
    from repro.netsim.switch import Switch
    from repro.netsim.topology import Topology
    from repro.policy.fsm import PolicyFSM
    from repro.sdn.channel import ControlChannel, ControlMessage

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointStore",
    "Checkpointer",
    "StandbyController",
    "reconcile",
    "replay_entries",
    "restore_checkpoint",
    "restore_controller",
]

#: Checkpoint format version; bumped on any incompatible layout change.
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Checkpoint:
    """One versioned, digestable snapshot of controller security state."""

    version: int
    at: float
    #: Journal high-water mark at capture time: restore replays entries
    #: with ``seq > checkpoint.seq`` (the WAL contract).
    seq: int
    controller: str
    view: dict[str, str]
    #: ``[[device, alert_kind, [timestamps...]], ...]`` sorted.
    escalations: list[list[Any]]
    #: ``[[device, trigger_key, trigger_at], ...]`` sorted (trace ids are
    #: process-local and deliberately dropped).
    dirty: list[list[Any]]
    #: The full serialized policy, runtime rules included.
    policy: dict[str, Any]
    #: ``[[device, posture_name], ...]`` -- what the data plane had
    #: installed at capture time (reconciliation evidence).
    postures: list[list[str]]
    epochs: dict[str, int]

    @classmethod
    def capture(cls, controller: IoTSecController) -> "Checkpoint":
        pipeline = controller.pipeline
        return cls(
            version=CHECKPOINT_VERSION,
            at=controller.sim.now,
            seq=controller.sim.journal.last_seq,
            controller=controller.name,
            view=controller.view.snapshot(),
            escalations=pipeline.escalator.snapshot(),
            dirty=pipeline.dirty_snapshot(),
            policy=policy_to_dict(controller.policy),
            postures=sorted(
                [d, p.name] for d, p in controller.orchestrator.current.items()
            ),
            epochs={"rounds": pipeline.stats.rounds},
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "at": self.at,
            "seq": self.seq,
            "controller": self.controller,
            "view": dict(self.view),
            "escalations": [list(e) for e in self.escalations],
            "dirty": [list(d) for d in self.dirty],
            "policy": self.policy,
            "postures": [list(p) for p in self.postures],
            "epochs": dict(self.epochs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Checkpoint":
        version = int(data.get("version", -1))
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        return cls(
            version=version,
            at=float(data["at"]),
            seq=int(data["seq"]),
            controller=str(data["controller"]),
            view=dict(data["view"]),
            escalations=[list(e) for e in data.get("escalations", ())],
            dirty=[list(d) for d in data.get("dirty", ())],
            policy=dict(data["policy"]),
            postures=[list(p) for p in data.get("postures", ())],
            epochs=dict(data.get("epochs", {})),
        )

    def digest(self) -> str:
        """Stable content digest: sha256 over the canonical JSON form."""
        canonical = json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        return (
            f"Checkpoint(v{self.version} t={self.at:.3f} seq={self.seq} "
            f"view={len(self.view)} digest={self.digest()[:12]})"
        )


class CheckpointStore:
    """The last-N checkpoints (the controller's local stable storage)."""

    def __init__(self, keep: int = 4) -> None:
        if keep <= 0:
            raise ValueError(f"keep must be positive (got {keep})")
        self.keep = keep
        self._checkpoints: list[Checkpoint] = []
        self.captured = 0

    def add(self, checkpoint: Checkpoint) -> None:
        self._checkpoints.append(checkpoint)
        self.captured += 1
        del self._checkpoints[: -self.keep]

    def latest(self) -> Checkpoint | None:
        return self._checkpoints[-1] if self._checkpoints else None

    def latest_at(self) -> float | None:
        """Sim-time of the newest checkpoint (the staleness SLO's signal)."""
        latest = self.latest()
        return latest.at if latest is not None else None

    def __len__(self) -> int:
        return len(self._checkpoints)

    def __iter__(self):
        return iter(self._checkpoints)


class Checkpointer:
    """Primary-side HA agent: periodic capture, replication, heartbeats.

    Replication is optional (pass ``standby=None`` for local-only
    checkpointing, the cold-restart configuration).  Checkpoints and
    journal deltas ride ``reliable=True``; heartbeats are deliberately
    fire-and-forget.
    """

    def __init__(
        self,
        controller: IoTSecController,
        store: CheckpointStore,
        period: float = 5.0,
        channel: "ControlChannel | None" = None,
        standby: str | None = None,
        heartbeat_period: float | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive (got {period})")
        self.controller = controller
        self.store = store
        self.period = period
        self.channel = channel
        self.standby = standby
        self._last_shipped_seq = controller.sim.journal.last_seq
        self._stops: list[Callable[[], None]] = [
            controller.sim.every(period, self._tick)
        ]
        if channel is not None and standby is not None and heartbeat_period:
            self._stops.append(
                controller.sim.every(heartbeat_period, self._heartbeat)
            )

    def _tick(self) -> None:
        controller = self.controller
        if controller.crashed:
            return
        checkpoint = Checkpoint.capture(controller)
        self.store.add(checkpoint)
        controller.sim.journal.record(
            "checkpoint",
            controller=controller.name,
            seq=checkpoint.seq,
            digest=checkpoint.digest(),
            view_keys=len(checkpoint.view),
        )
        if self.channel is not None and self.standby is not None:
            self.channel.send(
                controller.name,
                self.standby,
                "ha-checkpoint",
                {"checkpoint": checkpoint.as_dict()},
                reliable=True,
            )
            self._ship_deltas()

    def _heartbeat(self) -> None:
        controller = self.controller
        if controller.crashed or self.channel is None or self.standby is None:
            return
        self.channel.send(
            controller.name, self.standby, "ha-heartbeat", {"at": controller.sim.now}
        )
        self._ship_deltas()

    def _ship_deltas(self) -> None:
        """Replicate journal entries recorded since the last shipment."""
        assert self.channel is not None and self.standby is not None
        entries = self.controller.sim.journal.entries_since(self._last_shipped_seq)
        if not entries:
            return
        self._last_shipped_seq = entries[-1].seq
        self.channel.send(
            self.controller.name,
            self.standby,
            "ha-delta",
            {"entries": [e.as_dict() for e in entries]},
            reliable=True,
        )

    def stop(self) -> None:
        for stop in self._stops:
            stop()
        self._stops = []


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
def restore_checkpoint(controller: IoTSecController, checkpoint: Checkpoint) -> None:
    """Load a checkpoint into a (freshly built) controller, silently.

    The view is restored without change notification -- re-evaluation is
    :func:`reconcile`'s job, after the journal tail has replayed.  The
    target controller must have been built from the checkpoint's policy
    (``policy_from_dict(checkpoint.policy)``) for projections to match.
    """
    controller.view.restore(checkpoint.view)
    controller.pipeline.escalator.restore(checkpoint.escalations)
    controller.pipeline.restore_dirty(checkpoint.dirty)
    controller.pipeline.stats.rounds = int(checkpoint.epochs.get("rounds", 0))


#: Journal kinds the restore path replays (the WAL subset: controller
#: security state).  Everything else in the journal is evidence *about*
#: other components, not controller state.
_REPLAYED_KINDS = ("context", "alert-ingest", "policy-update")


def replay_entries(
    controller: IoTSecController, entries: Iterable[Mapping[str, Any]]
) -> dict[str, int]:
    """Replay journal-entry dicts (the tail past a checkpoint's seq).

    - ``context`` entries re-raise device contexts (severity-guarded, so
      out-of-order replays cannot downgrade);
    - ``alert-ingest`` entries re-feed the escalation engine at the
      alert's original timestamp, rebuilding the sliding windows (the
      *triggered* context is not taken from the replayed observation --
      the journal's own ``context`` entries carry the outcome);
    - ``policy-update`` entries carrying a serialized rule re-add the
      runtime rule (fresh ``rule_id``; identity is process-local).
    """
    counts = {"contexts": 0, "alerts": 0, "rules": 0}
    for entry in sorted(entries, key=lambda e: int(e["seq"])):
        kind = entry.get("kind")
        fields = entry.get("fields", {})
        if kind == "context":
            context = str(fields.get("context", ""))
            if context:
                controller.set_context(str(entry.get("device", "")), context)
                counts["contexts"] += 1
        elif kind == "alert-ingest":
            device = str(entry.get("device", ""))
            alert_kind = str(fields.get("alert_kind", ""))
            if device and alert_kind:
                controller.pipeline.escalator.observe(
                    device, alert_kind, float(fields.get("sent_at", entry["at"]))
                )
                counts["alerts"] += 1
        elif kind == "policy-update" and "rule" in fields:
            rule = dict(fields["rule"])
            controller.pipeline.add_rule(
                PostureRule(
                    predicate=StatePredicate.make(dict(rule.get("when", {}))),
                    device=str(rule["device"]),
                    posture=posture_from_dict(rule.get("posture", {})),
                    priority=int(rule.get("priority", 100)),
                )
            )
            counts["rules"] += 1
    return counts


def reconcile(controller: IoTSecController) -> tuple[int, int]:
    """Diff restored policy state against the surviving data plane.

    Every unpinned attached device is evaluated against the restored
    view; ``apply_many`` skips devices whose installed posture already
    matches, so only genuinely divergent devices cost a re-push (one
    epoch per touched switch in consistent mode).  When the restored
    policy's answer for a device is the *permissive default* but the data
    plane has something stricter installed (an administrative monitor
    baseline, a posture from a rule added and lost in the unreplicated
    window), the installed posture wins: reconciliation after a crash
    must never lower a device's defenses.  Returns ``(checked,
    repushed)``.
    """
    orchestrator = controller.orchestrator
    pipeline = controller.pipeline
    state = pipeline.system_state()
    assignments = []
    for device in controller.policy.devices:
        if device not in orchestrator.attachments or device in orchestrator.pinned:
            continue
        target = pipeline.pruned.posture_for(state, device)
        installed = orchestrator.current.get(device)
        if (
            target.is_permissive
            and installed is not None
            and not installed.is_permissive
        ):
            continue
        assignments.append((device, target))
    records = orchestrator.apply_many(assignments)
    controller.sim.journal.record(
        "failover-reconcile",
        trace=controller.sim.tracer.current(),
        checked=len(assignments),
        repushed=len(records),
    )
    return len(assignments), len(records)


def _revive(
    sim: "Simulator",
    channel: "ControlChannel",
    orchestrator: "PostureOrchestrator",
    topology: "Topology | None",
    devices: Mapping[str, "IoTDevice"],
    switches: Iterable["Switch"],
    checkpoint: Checkpoint | None,
    tail: Iterable[Mapping[str, Any]],
    fallback_policy: dict[str, Any],
    name: str,
    escalations: tuple[EscalationRule, ...],
    ingest: "IngestConfig | None",
    env: "Environment | None",
    durable_telemetry: bool = False,
) -> tuple[IoTSecController, dict[str, int], tuple[int, int]]:
    """Build + restore + replay + re-adopt + reconcile (shared core)."""
    policy = policy_from_dict(
        checkpoint.policy if checkpoint is not None else fallback_policy
    )
    controller = IoTSecController(
        name=name,
        sim=sim,
        policy=policy,
        orchestrator=orchestrator,
        channel=channel,
        topology=topology,
        escalations=escalations,
        ingest=ingest,
        # Stream offsets are in-memory controller state, so a revived
        # controller starts a fresh consumer: hosts replay from their ack
        # watermark and the consumer adopts the base on first contact.
        durable_telemetry=durable_telemetry,
    )
    for device in devices.values():
        controller.register_device(device)
    # Registration marked every device dirty with its fresh NORMAL context.
    # Flushing that round would re-derive *default* postures and tear down
    # anything stricter already on the wire (a monitor baseline, an
    # operator's block).  Discard it: the checkpoint's dirty set is the
    # authoritative open round, and reconcile() handles divergence.
    controller.pipeline.halt()
    if checkpoint is not None:
        restore_checkpoint(controller, checkpoint)
    counts = replay_entries(controller, tail)
    for switch in switches:
        controller.adopt_packet_in(switch)
    if env is not None:
        controller.watch_environment(env)
    checked = reconcile(controller)
    return controller, counts, checked


def restore_controller(
    sim: "Simulator",
    channel: "ControlChannel",
    orchestrator: "PostureOrchestrator",
    topology: "Topology | None",
    devices: Mapping[str, "IoTDevice"],
    switches: Iterable["Switch"],
    checkpoint: Checkpoint,
    tail: Iterable[Mapping[str, Any]] = (),
    name: str = "controller",
    escalations: tuple[EscalationRule, ...] = DEFAULT_ESCALATIONS,
    ingest: "IngestConfig | None" = None,
    env: "Environment | None" = None,
    durable_telemetry: bool = False,
) -> IoTSecController:
    """Cold restart: rebuild the controller from checkpoint + WAL tail.

    ``tail`` is the journal entries (dict form) with ``seq`` past
    ``checkpoint.seq`` -- for a local restart, straight out of
    ``sim.journal.entries_since(checkpoint.seq)``.
    """
    controller, counts, (checked, repushed) = _revive(
        sim=sim,
        channel=channel,
        orchestrator=orchestrator,
        topology=topology,
        devices=devices,
        switches=switches,
        checkpoint=checkpoint,
        tail=tail,
        fallback_policy=checkpoint.policy,
        name=name,
        escalations=escalations,
        ingest=ingest,
        env=env,
        durable_telemetry=durable_telemetry,
    )
    sim.journal.record(
        "controller-restart",
        controller=name,
        checkpoint_seq=checkpoint.seq,
        replayed=sum(counts.values()),
        reconciled=checked,
        repushed=repushed,
    )
    return controller


# ----------------------------------------------------------------------
# Hot standby
# ----------------------------------------------------------------------
class StandbyController:
    """A warm replica that detects primary death and takes over.

    Listens on its own channel endpoint for ``ha-checkpoint`` /
    ``ha-delta`` / ``ha-heartbeat`` traffic from the primary's
    :class:`Checkpointer`.  Any primary traffic refreshes the liveness
    clock; when it goes silent for longer than the (seeded-jittered)
    timeout, :meth:`takeover` promotes a fresh controller under the
    primary's endpoint name -- at-least-once alert retransmissions that
    were addressed to the dead primary deliver to the new incumbent.
    """

    def __init__(
        self,
        sim: "Simulator",
        channel: "ControlChannel",
        orchestrator: "PostureOrchestrator",
        topology: "Topology | None",
        policy: "PolicyFSM",
        devices: Mapping[str, "IoTDevice"],
        switches: Iterable["Switch"] = (),
        env: "Environment | None" = None,
        name: str = "standby",
        primary: str = "controller",
        escalations: tuple[EscalationRule, ...] = DEFAULT_ESCALATIONS,
        ingest: "IngestConfig | None" = None,
        durable_telemetry: bool = False,
        heartbeat_timeout: float = 1.0,
        check_period: float = 0.25,
        seed: int = 0,
        on_takeover: Callable[[IoTSecController], None] | None = None,
    ) -> None:
        if heartbeat_timeout <= 0:
            raise ValueError(f"heartbeat_timeout must be positive (got {heartbeat_timeout})")
        self.sim = sim
        self.channel = channel
        self.orchestrator = orchestrator
        self.topology = topology
        self.devices = devices
        self.switches = list(switches)
        self.env = env
        self.name = name
        self.primary = primary
        self.escalations = escalations
        self.ingest = ingest
        self.durable_telemetry = durable_telemetry
        self.on_takeover = on_takeover
        #: Cold fallback: a takeover before the first checkpoint arrives
        #: starts from the policy the site was deployed with.
        self._fallback_policy = policy_to_dict(policy)
        self.checkpoint: Checkpoint | None = None
        self.deltas: dict[int, dict[str, Any]] = {}
        self.checkpoints_received = 0
        self.heartbeats_received = 0
        #: Seeded detection jitter: replicas across a fleet must not all
        #: declare the primary dead at the same deterministic instant.
        self.timeout = heartbeat_timeout + random.Random(seed).uniform(
            0.0, 0.1 * heartbeat_timeout
        )
        self.last_heartbeat = sim.now
        self.active = False
        self.promoted: IoTSecController | None = None
        channel.register(name, self.on_control_message)
        self._stop_check = sim.every(check_period, self._check)

    # ------------------------------------------------------------------
    def on_control_message(self, message: "ControlMessage") -> None:
        if self.active:
            return
        # Any traffic from the primary proves liveness, not just
        # heartbeats -- a primary busy shipping checkpoints is alive.
        self.last_heartbeat = self.sim.now
        if message.kind == "ha-checkpoint":
            checkpoint = Checkpoint.from_dict(message.body["checkpoint"])
            if self.checkpoint is None or checkpoint.seq >= self.checkpoint.seq:
                self.checkpoint = checkpoint
            self.checkpoints_received += 1
            # Deltas at or before the checkpoint are subsumed by it.
            self.deltas = {
                seq: e for seq, e in self.deltas.items() if seq > checkpoint.seq
            }
        elif message.kind == "ha-delta":
            for entry in message.body.get("entries", ()):
                seq = int(entry["seq"])
                if self.checkpoint is None or seq > self.checkpoint.seq:
                    self.deltas[seq] = dict(entry)
        elif message.kind == "ha-heartbeat":
            self.heartbeats_received += 1

    def _check(self) -> None:
        if self.active:
            return
        if self.sim.now - self.last_heartbeat > self.timeout:
            self.takeover("heartbeat-timeout")

    # ------------------------------------------------------------------
    def takeover(self, reason: str) -> IoTSecController:
        """Promote: restore, replay, re-adopt, reconcile -- journaled."""
        if self.active and self.promoted is not None:
            return self.promoted
        self.active = True
        self._stop_check()
        sim = self.sim
        detected_at = sim.now
        tracer = sim.tracer
        trace = tracer.start_trace(device="", kind="failover", standby=self.name)
        sim.journal.record(
            "failover",
            trace=trace,
            standby=self.name,
            reason=reason,
            last_heartbeat=self.last_heartbeat,
            checkpoint_seq=self.checkpoint.seq if self.checkpoint else None,
            deltas=len(self.deltas),
        )
        if trace is not None:
            tracer.span(
                trace,
                "detect",
                self.last_heartbeat,
                detected_at,
                timeout=self.timeout,
            )
        tracer.push(trace)
        try:
            tail = [
                self.deltas[seq]
                for seq in sorted(self.deltas)
                if self.checkpoint is None or seq > self.checkpoint.seq
            ]
            controller, counts, (checked, repushed) = _revive(
                sim=sim,
                channel=self.channel,
                orchestrator=self.orchestrator,
                topology=self.topology,
                devices=self.devices,
                switches=self.switches,
                checkpoint=self.checkpoint,
                tail=tail,
                fallback_policy=self._fallback_policy,
                name=self.primary,
                escalations=self.escalations,
                ingest=self.ingest,
                env=self.env,
                durable_telemetry=self.durable_telemetry,
            )
        finally:
            tracer.pop()
        if trace is not None:
            tracer.span(
                trace,
                "restore",
                detected_at,
                sim.now,
                replayed=sum(counts.values()),
                reconciled=checked,
                repushed=repushed,
            )
        sim.journal.record(
            "failover-complete",
            trace=trace,
            standby=self.name,
            controller=self.primary,
            blind_s=round(sim.now - self.last_heartbeat, 6),
            replayed_contexts=counts["contexts"],
            replayed_alerts=counts["alerts"],
            replayed_rules=counts["rules"],
            reconciled=checked,
            repushed=repushed,
        )
        self.promoted = controller
        if self.on_takeover is not None:
            self.on_takeover(controller)
        return controller

    def stop(self) -> None:
        """Stand down (tests / controlled shutdown)."""
        self._stop_check()
        self.channel.unregister(self.name)
