"""Deployment metrics and reporting.

One call summarizes a (finished or running) deployment for operators and
experiments: per-device security state, alert volumes, enforcement
activity, traffic accounting, and controller reaction latencies.  The
benchmarks compute their own narrow metrics; this module is the operator-
facing "what is my home's security posture right now" view, and the CLI's
output backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import SecuredDeployment


@dataclass
class DeviceSummary:
    name: str
    kind: str
    sku: str
    state: str
    context: str
    posture: str
    flaws: tuple[str, ...]
    alerts: int
    compromised_ground_truth: bool


@dataclass
class DeploymentReport:
    """A point-in-time summary of one deployment."""

    at: float
    devices: list[DeviceSummary] = field(default_factory=list)
    alerts_by_kind: dict[str, int] = field(default_factory=dict)
    postures_applied: int = 0
    mbox_active: int = 0
    mbox_boots: int = 0
    mbox_reconfigs: int = 0
    packets_tunnelled: int = 0
    packets_dropped_unbound: int = 0
    reaction_p50_ms: float | None = None
    reaction_max_ms: float | None = None
    events_processed: int = 0
    #: Full metrics-registry snapshot ({} when observability is disabled).
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Flight-recorder summary: journal stats, retained-entry counts by
    #: kind, and the most recent entries ({} when observability is off).
    journal: dict[str, Any] = field(default_factory=dict)
    #: Per-flagged-device incident summaries (device -> compact incident
    #: digest): chains, stage coverage, alert mix.
    incidents: dict[str, Any] = field(default_factory=dict)
    #: SLO/health-plane verdict ({} when no plane is attached): rollup,
    #: per-subsystem states, and the tracked SLO statuses.
    health: dict[str, Any] = field(default_factory=dict)

    def compromised_devices(self) -> list[str]:
        return [d.name for d in self.devices if d.compromised_ground_truth]

    def devices_not_normal(self) -> list[str]:
        return [d.name for d in self.devices if d.context != "normal"]

    def as_dict(self) -> dict[str, Any]:
        """Plain-serializable form: every value survives ``json.dumps``."""
        return {
            "at": self.at,
            "devices": [
                {
                    "name": d.name,
                    "kind": d.kind,
                    "sku": d.sku,
                    "state": d.state,
                    "context": d.context,
                    "posture": d.posture,
                    "flaws": list(d.flaws),
                    "alerts": d.alerts,
                    "compromised_ground_truth": d.compromised_ground_truth,
                }
                for d in self.devices
            ],
            "alerts_by_kind": dict(self.alerts_by_kind),
            "postures_applied": self.postures_applied,
            "mbox": {
                "active": self.mbox_active,
                "boots": self.mbox_boots,
                "reconfigs": self.mbox_reconfigs,
            },
            "packets_tunnelled": self.packets_tunnelled,
            "packets_dropped_unbound": self.packets_dropped_unbound,
            "reaction_p50_ms": self.reaction_p50_ms,
            "reaction_max_ms": self.reaction_max_ms,
            "events_processed": self.events_processed,
            "metrics": self.metrics,
            "journal": self.journal,
            "incidents": self.incidents,
            "health": self.health,
        }

    def render(self) -> str:
        """A human-readable multi-line summary."""
        lines = [f"Deployment report @ t={self.at:.1f}s"]
        lines.append(
            f"  devices: {len(self.devices)}"
            f" | flagged: {len(self.devices_not_normal())}"
            f" | actually compromised: {len(self.compromised_devices())}"
        )
        header = f"  {'device':<14} {'kind':<16} {'state':<10} {'context':<11} {'posture':<20} alerts"
        lines.append(header)
        for d in self.devices:
            lines.append(
                f"  {d.name:<14} {d.kind:<16} {d.state:<10} {d.context:<11} "
                f"{d.posture:<20} {d.alerts}"
            )
        if self.alerts_by_kind:
            kinds = ", ".join(
                f"{k}={v}" for k, v in sorted(self.alerts_by_kind.items())
            )
            lines.append(f"  alerts: {kinds}")
        lines.append(
            f"  µmboxes: {self.mbox_active} active"
            f" ({self.mbox_boots} boots, {self.mbox_reconfigs} reconfigs)"
            f" | tunnelled pkts: {self.packets_tunnelled}"
        )
        if self.reaction_p50_ms is not None:
            lines.append(
                f"  controller reactions: p50={self.reaction_p50_ms:.1f}ms"
                f" max={self.reaction_max_ms:.1f}ms"
            )
        if self.health:
            states = " ".join(
                f"{name}={info['state']}"
                for name, info in self.health.get("subsystems", {}).items()
            )
            lines.append(
                f"  health: {str(self.health.get('rollup', '?')).upper()}"
                f" | {states}"
                f" | slo breaches: {self.health.get('slo_breaches', 0)}"
                f" (recovered: {self.health.get('slo_recoveries', 0)})"
            )
        return "\n".join(lines)


def summarize(dep: "SecuredDeployment") -> DeploymentReport:
    """Build a :class:`DeploymentReport` from a deployment's current state.

    When the simulator's metrics registry is enabled (the default), alert
    volumes, µmbox lifecycle counts and tunnel traffic come from the
    registry -- the report is a *view over the instrumentation*, so what
    operators read here and what ``repro metrics`` exports cannot drift
    apart.  With observability disabled the report falls back to reading
    the component counters directly.
    """
    report = DeploymentReport(at=dep.sim.now, events_processed=dep.sim.events_processed)
    registry = dep.sim.metrics

    alerts = dep.alerts()
    host_label = (
        dep.cluster.metric_labels.get("host") if dep.cluster is not None else None
    )
    if registry.enabled and host_label is not None:
        for instrument in registry.series("mbox_alerts"):
            if instrument.labels.get("host") == host_label:
                kind = instrument.labels.get("kind", "?")
                report.alerts_by_kind[kind] = (
                    report.alerts_by_kind.get(kind, 0) + int(instrument.value)
                )
    else:
        for alert in alerts:
            report.alerts_by_kind[alert.kind] = (
                report.alerts_by_kind.get(alert.kind, 0) + 1
            )

    for name, device in sorted(dep.devices.items()):
        context = dep.controller.context_of(name) if dep.controller else "-"
        posture = "-"
        if dep.orchestrator is not None:
            current = dep.orchestrator.posture_of(name)
            posture = current.name if current is not None else "-"
        report.devices.append(
            DeviceSummary(
                name=name,
                kind=device.kind,
                sku=device.sku,
                state=device.state,
                context=context,
                posture=posture,
                flaws=tuple(sorted(device.firmware.flaw_classes())),
                alerts=sum(1 for a in alerts if a.device == name),
                compromised_ground_truth=device.is_compromised(),
            )
        )

    if dep.orchestrator is not None:
        report.postures_applied = len(dep.orchestrator.records)
    if dep.manager is not None:
        labels = dep.manager.metric_labels
        if registry.enabled:
            report.mbox_active = int(registry.value("mbox_active", **labels) or 0)
            report.mbox_boots = int(registry.value("mbox_boots", **labels) or 0)
            report.mbox_reconfigs = int(registry.value("mbox_reconfigs", **labels) or 0)
        else:
            report.mbox_active = dep.manager.active_count()
            report.mbox_boots = dep.manager.boots
            report.mbox_reconfigs = dep.manager.reconfigs
    if dep.cluster is not None:
        labels = dep.cluster.metric_labels
        if registry.enabled:
            report.packets_tunnelled = int(
                registry.value("mbox_tunnelled_in", **labels) or 0
            )
            report.packets_dropped_unbound = int(
                registry.value("mbox_unbound_drops", **labels) or 0
            )
        else:
            report.packets_tunnelled = dep.cluster.tunnelled_in
            report.packets_dropped_unbound = dep.cluster.unbound_drops
    if dep.controller is not None and dep.controller.reactions:
        # Exact quantiles from the reaction list (the registry histogram
        # only has bucket resolution; benches rely on precise latencies).
        latencies = sorted(r.latency for r in dep.controller.reactions)
        report.reaction_p50_ms = latencies[len(latencies) // 2] * 1e3
        report.reaction_max_ms = latencies[-1] * 1e3
    if registry.enabled:
        report.metrics = registry.snapshot()
    journal = dep.sim.journal
    if journal.enabled:
        report.journal = {
            **journal.stats(),
            "kinds": journal.kinds(),
            "tail": [entry.as_dict() for entry in journal.tail(20)],
        }
        # Per-flagged-device incident digests: the forensic view embedded
        # right where operators already look.  Full reconstruction stays
        # behind ``repro incident <device>``.
        from repro.obs.incident import reconstruct

        for name in report.devices_not_normal():
            incident = reconstruct(dep.sim, name)
            report.incidents[name] = {
                "events": len(incident.timeline),
                "chains": len(incident.chains),
                "stages": sorted(
                    {s for c in incident.chains for s in c.stage_names}
                ),
                "alerts_by_kind": dict(incident.alerts_by_kind),
                "applies": incident.applies,
            }
    plane = getattr(dep, "health_plane", None)
    if plane is not None and plane.enabled:
        report.health = plane.snapshot()
    return report
