"""Alert-storm load shedding: a bounded priority ingest queue.

The controller's ingest path is the one unbounded resource left in the
Figure-2 loop: every µmbox alert and telemetry report lands in
``_on_alert`` synchronously, so a compromised device (or a buggy fleet)
can melt the controller with sheer volume -- and with it the only defense
the paper's "unfixable" devices have.  The :class:`IngestQueue` puts a
bounded, prioritized, rate-limited stage in front of alert handling:

- **Classes** (strict priority): security alerts for devices under an
  *enforcing* posture first (they are already escalated -- losing their
  alerts means losing the enforcement feedback loop), then alerts for
  monitor-only devices, then routine telemetry.
- **Bounded capacity** with priority eviction: when the queue is full, a
  higher-class arrival evicts the newest lowest-class entry instead of
  being dropped itself (in FIFO mode the queue is plain drop-tail --
  that is the "without shedding" comparison arm of bench E13).
- **Watermark shed mode**: above the high watermark the queue enters
  *shed mode* -- telemetry is dropped at the door and the ``on_shed``
  backpressure callback tells the µmbox hosts to sample telemetry locally
  (coalesce at the source instead of burning control-channel and queue
  budget).  Below the low watermark shedding ends and the callback
  releases the hosts.
- **Service model**: one message costs ``service_time`` simulated
  seconds, so arrival rates above ``1/service_time`` genuinely queue --
  reaction latency under overload is measurable, not hidden.

Per-class drop/processed counters and a shed-mode gauge live in the
metrics registry; shed transitions are journaled so incident
reconstruction shows *when* the controller started protecting what was
already escalated.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Event, Simulator

__all__ = [
    "CLASS_ENFORCING",
    "CLASS_MONITOR",
    "CLASS_NAMES",
    "CLASS_TELEMETRY",
    "IngestConfig",
    "IngestQueue",
]

#: Strict priority classes, lowest number served first.
CLASS_ENFORCING = 0   # security alert, device under an enforcing posture
CLASS_MONITOR = 1     # security alert, monitor-only (or unknown) device
CLASS_TELEMETRY = 2   # routine telemetry
CLASS_NAMES = ("enforcing", "monitor", "telemetry")


@dataclass(frozen=True)
class IngestConfig:
    """Knobs for the controller's ingest queue (``None`` = no queue).

    ``high_watermark``/``low_watermark`` are fractions of ``capacity``;
    ``prioritized=False`` degrades the queue to a plain bounded FIFO and
    ``shed=False`` disables shed mode -- together they form the
    "unprotected" arm of the storm bench.
    """

    capacity: int = 256
    service_time: float = 0.001
    high_watermark: float = 0.75
    low_watermark: float = 0.25
    prioritized: bool = True
    shed: bool = True

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive (got {self.capacity})")
        if self.service_time < 0:
            raise ValueError(f"service_time must be >= 0 (got {self.service_time})")
        if not 0.0 < self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 < low <= high <= 1 "
                f"(got low={self.low_watermark}, high={self.high_watermark})"
            )


class IngestQueue:
    """Bounded priority queue between the control channel and the loop.

    ``handler(payload)`` is invoked once per serviced message, in strict
    class order (FIFO within a class).  ``on_processed(cls, latency)``
    and ``on_shed(active)`` are optional observation/backpressure hooks.
    """

    def __init__(
        self,
        sim: "Simulator",
        handler: Callable[[Any], None],
        config: IngestConfig | None = None,
        name: str = "controller",
    ) -> None:
        self.sim = sim
        self.handler = handler
        self.config = config or IngestConfig()
        self.name = name
        #: One FIFO per class (strict priority); in FIFO mode only a
        #: single global deque is used.  Entries are (cls, enqueued_at,
        #: payload).
        self._queues: tuple[deque, deque, deque] = (deque(), deque(), deque())
        self._fifo: deque = deque()
        self._service_event: "Event | None" = None
        self.shedding = False
        self.shed_transitions = 0
        self.accepted = [0, 0, 0]
        self.processed = [0, 0, 0]
        self.dropped = [0, 0, 0]
        self.on_shed: Callable[[bool], None] | None = None
        self.on_processed: Callable[[int, float], None] | None = None
        metrics = sim.metrics
        self.metric_labels = {"queue": metrics.unique(f"ingest:{name}")}
        metrics.gauge("ingest_depth", fn=self.depth, **self.metric_labels)
        metrics.gauge(
            "ingest_shed_mode", fn=lambda: int(self.shedding), **self.metric_labels
        )
        self._c_dropped = [
            metrics.counter("ingest_dropped", cls=cls, **self.metric_labels)
            for cls in CLASS_NAMES
        ]
        self._c_processed = [
            metrics.counter("ingest_processed", cls=cls, **self.metric_labels)
            for cls in CLASS_NAMES
        ]
        self._c_shed = metrics.counter("ingest_shed_transitions", **self.metric_labels)

    # ------------------------------------------------------------------
    def depth(self) -> int:
        if self.config.prioritized:
            return sum(len(q) for q in self._queues)
        return len(self._fifo)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def would_shed(self, cls: int) -> bool:
        """Whether offering ``cls`` right now would be refused at the door.

        The durable telemetry stream consults this *before* consuming a
        bulk record: instead of offering and losing it, the consumer
        defers -- the record stays in the host's buffer and replays once
        shedding ends (defer-to-buffer instead of drop).
        """
        return self.shedding and self.config.shed and cls == CLASS_TELEMETRY

    def offer(self, cls: int, payload: Any) -> bool:
        """Enqueue one message; returns False when it was shed/dropped."""
        cfg = self.config
        if self.would_shed(cls):
            # Shed mode: telemetry is refused at the door -- the
            # backpressure signal asked the hosts to sample locally.
            self._drop(cls)
            return False
        if self.depth() >= cfg.capacity and not self._make_room(cls):
            self._drop(cls)
            return False
        entry = (cls, self.sim.now, payload)
        if cfg.prioritized:
            self._queues[cls].append(entry)
        else:
            self._fifo.append(entry)
        self.accepted[cls] += 1
        self._update_shed()
        if self._service_event is None:
            self._service_event = self.sim.schedule(cfg.service_time, self._service)
        return True

    def _make_room(self, cls: int) -> bool:
        """Full queue: evict the newest strictly-lower-class entry, if any."""
        if not self.config.prioritized:
            return False  # plain FIFO: drop-tail
        for lower in (CLASS_TELEMETRY, CLASS_MONITOR, CLASS_ENFORCING):
            if lower <= cls:
                break
            if self._queues[lower]:
                evicted_cls, __, __ = self._queues[lower].pop()
                self._drop(evicted_cls)
                return True
        return False

    def _drop(self, cls: int) -> None:
        self.dropped[cls] += 1
        self._c_dropped[cls].inc()

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------
    def _service(self) -> None:
        self._service_event = None
        entry = self._pop()
        if entry is None:
            return
        cls, enqueued_at, payload = entry
        self.processed[cls] += 1
        self._c_processed[cls].inc()
        if self.on_processed is not None:
            self.on_processed(cls, self.sim.now - enqueued_at)
        self.handler(payload)
        self._update_shed()
        if self.depth() > 0 and self._service_event is None:
            self._service_event = self.sim.schedule(
                self.config.service_time, self._service
            )

    def _pop(self):
        if self.config.prioritized:
            for queue in self._queues:
                if queue:
                    return queue.popleft()
            return None
        return self._fifo.popleft() if self._fifo else None

    # ------------------------------------------------------------------
    # Shed mode
    # ------------------------------------------------------------------
    def _update_shed(self) -> None:
        cfg = self.config
        if not cfg.shed:
            return
        depth = self.depth()
        if not self.shedding and depth >= cfg.high_watermark * cfg.capacity:
            self._set_shedding(True, depth)
        elif self.shedding and depth <= cfg.low_watermark * cfg.capacity:
            self._set_shedding(False, depth)

    def _set_shedding(self, active: bool, depth: int) -> None:
        self.shedding = active
        self.shed_transitions += 1
        self._c_shed.inc()
        self.sim.journal.record(
            "shed-on" if active else "shed-off",
            controller=self.name,
            depth=depth,
            dropped=sum(self.dropped),
        )
        if self.on_shed is not None:
            self.on_shed(active)

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Discard everything queued (the owning controller crashed)."""
        n = self.depth()
        for queue in self._queues:
            queue.clear()
        self._fifo.clear()
        if self._service_event is not None:
            self._service_event.cancel()
            self._service_event = None
        return n

    def stats(self) -> dict[str, Any]:
        return {
            "depth": self.depth(),
            "shedding": self.shedding,
            "shed_transitions": self.shed_transitions,
            "accepted": dict(zip(CLASS_NAMES, self.accepted)),
            "processed": dict(zip(CLASS_NAMES, self.processed)),
            "dropped": dict(zip(CLASS_NAMES, self.dropped)),
        }

    def __repr__(self) -> str:
        return (
            f"IngestQueue(depth={self.depth()}/{self.config.capacity}, "
            f"shedding={self.shedding}, dropped={sum(self.dropped)})"
        )
