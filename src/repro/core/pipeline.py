"""The controller's staged reactive pipeline.

The policy loop of Figure 2 -- events in, postures out -- runs through four
explicit stages instead of ad-hoc callbacks:

1. **ingest**: view-key changes land here (via the global view's dirty-key
   notification) and are translated into *dirty devices* through the
   pruned policy's reverse index ``variable key -> affected devices``.
   No per-change scan over all devices ever happens.
2. **escalate**: raw alert streams become context values through sliding
   count/window rules (:class:`EscalationEngine`).  Alert timestamps are
   pruned to the widest window of the alert's kind, so long runs stay
   bounded.
3. **evaluate**: dirty devices accumulated at the same simulated instant
   are coalesced into one evaluation round -- one ``system_state`` build,
   one pruned lookup per dirty device -- scheduled as a zero-delay event
   so every same-instant change joins the batch.  A burst of N alerts
   touching M devices costs one round, not N*M re-evaluations.
4. **actuate**: the round's posture assignments go to the orchestrator as
   one :meth:`PostureOrchestrator.apply_many` batch -- at most one apply
   per device per round, one flow-rule push per switch.

Reaction latency semantics are preserved: each :class:`ReactionRecord`
measures from the *first* view change that marked the device dirty to the
instant the orchestrator applied the new posture.

When the pipeline is driven outside the event loop (tests, administrative
calls like ``set_context``), the round flushes synchronously so effects
remain immediately observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.obs import COUNT_BUCKETS
from repro.policy.context import COMPROMISED, SEVERITY, SUSPICIOUS
from repro.policy.pruning import PrunedPolicy
from repro.policy.serialization import posture_to_dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.events import EventBus
    from repro.core.orchestrator import PostureOrchestrator
    from repro.core.view import GlobalView
    from repro.netsim.simulator import Event, Simulator
    from repro.policy.fsm import PolicyFSM, PostureRule


@dataclass(frozen=True)
class EscalationRule:
    """``count`` alerts of ``kind`` within ``window`` seconds => context."""

    alert_kind: str
    context: str
    count: int = 1
    window: float = 60.0


DEFAULT_ESCALATIONS: tuple[EscalationRule, ...] = (
    EscalationRule("signature-match", SUSPICIOUS, count=1),
    EscalationRule("login-rejected", SUSPICIOUS, count=3, window=60.0),
    EscalationRule("login-attempt", SUSPICIOUS, count=5, window=30.0),
    EscalationRule("rate-limited", SUSPICIOUS, count=1),
    EscalationRule("firewall-blocked", SUSPICIOUS, count=5, window=60.0),
    EscalationRule("context-gate-blocked", SUSPICIOUS, count=2, window=60.0),
    EscalationRule("command-not-whitelisted", SUSPICIOUS, count=1),
    EscalationRule("dns-reflection-blocked", COMPROMISED, count=10, window=10.0),
    EscalationRule("unapproved-source", SUSPICIOUS, count=3, window=60.0),
    EscalationRule("anomalous-command", SUSPICIOUS, count=2, window=300.0),
    # "insider": a *registered device* appears as the source of an alert at
    # some other device's µmbox -- the launchpad pattern of Figure 1.
    EscalationRule("insider", SUSPICIOUS, count=1),
)


@dataclass
class ReactionRecord:
    """Cause -> effect timing for the responsiveness benches."""

    device: str
    trigger_key: str
    trigger_at: float
    applied_at: float
    posture: str
    #: Causal-trace id of the alert that triggered the reaction (None for
    #: untraced triggers such as environment changes or admin calls).
    trace_id: int | None = None

    @property
    def latency(self) -> float:
        return self.applied_at - self.trigger_at


@dataclass
class PipelineStats:
    """Counters for each stage, reported by the scale benches."""

    ingested: int = 0      # policy-relevant view changes accepted
    coalesced: int = 0     # device marks absorbed into an existing round
    rounds: int = 0        # evaluation rounds flushed
    evaluations: int = 0   # pruned posture lookups performed
    applies: int = 0       # orchestrator records produced


class EscalationEngine:
    """Stage 2: sliding count/window escalation over per-device alert streams.

    Timestamps are kept per ``(device, alert kind)`` and pruned on every
    observation to the widest window any rule declares for that kind
    (boundary-inclusive, matching the ``t >= at - window`` rule test), so
    memory stays proportional to recent alert rate instead of run length.
    """

    def __init__(self, rules: Iterable[EscalationRule]) -> None:
        self.rules: tuple[EscalationRule, ...] = tuple(rules)
        # Precomputed per-kind dispatch: one lookup yields both the rule
        # tuple and the widest pruning window for that kind, so ``observe``
        # never walks the full rule list or consults two dicts.
        by_kind: dict[str, list[EscalationRule]] = {}
        for rule in self.rules:
            by_kind.setdefault(rule.alert_kind, []).append(rule)
        self._kind_table: dict[str, tuple[tuple[EscalationRule, ...], float]] = {
            kind: (tuple(kind_rules), max(r.window for r in kind_rules))
            for kind, kind_rules in by_kind.items()
        }
        self._alert_times: dict[tuple[str, str], list[float]] = {}

    def observe(self, device: str, alert_kind: str, at: float) -> str | None:
        """Record one alert; return the most severe context it triggers."""
        times = self._alert_times.setdefault((device, alert_kind), [])
        times.append(at)
        entry = self._kind_table.get(alert_kind)
        if entry is None:
            # No rule cares about this kind: horizon collapses to ``at``,
            # so only same-instant timestamps survive (as before).
            if times[0] < at:
                times[:] = [t for t in times if t >= at]
            return None
        kind_rules, max_window = entry
        horizon = at - max_window
        if times[0] < horizon:
            times[:] = [t for t in times if t >= horizon]
        triggered: str | None = None
        for rule in kind_rules:
            recent = sum(1 for t in times if t >= at - rule.window)
            if recent >= rule.count and (
                triggered is None
                or SEVERITY.get(rule.context, 0) > SEVERITY.get(triggered, 0)
            ):
                triggered = rule.context
        return triggered

    def pending_counts(self) -> dict[tuple[str, str], int]:
        """Retained timestamps per (device, kind) -- for leak tests."""
        return {key: len(times) for key, times in self._alert_times.items()}

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot(self) -> list[list]:
        """Sliding-window timestamps in a stable, JSON-plain shape:
        ``[[device, alert_kind, [t0, t1, ...]], ...]`` sorted by key."""
        return [
            [device, kind, list(times)]
            for (device, kind), times in sorted(self._alert_times.items())
            if times
        ]

    def restore(self, data: Iterable[Iterable]) -> None:
        """Load a :meth:`snapshot` (replacing current window state)."""
        self._alert_times = {
            (str(device), str(kind)): [float(t) for t in times]
            for device, kind, times in data
        }


class ReactivePipeline:
    """Stages 1, 3 and 4, plus ownership of the policy's derived state."""

    def __init__(
        self,
        sim: "Simulator",
        view: "GlobalView",
        policy: "PolicyFSM",
        orchestrator: "PostureOrchestrator",
        escalations: tuple[EscalationRule, ...] = DEFAULT_ESCALATIONS,
        bus: "EventBus | None" = None,
    ) -> None:
        self.sim = sim
        self.view = view
        self.policy = policy
        self.orchestrator = orchestrator
        self.bus = bus
        self.escalator = EscalationEngine(escalations)
        self.pruned = PrunedPolicy(policy)
        self.stats = PipelineStats()
        self.reactions: list[ReactionRecord] = []
        #: device -> (first trigger key, trigger time, trace id) for the
        #: open round
        self._dirty: dict[str, tuple[str, float, int | None]] = {}
        self._flush_event: "Event | None" = None
        self._refresh_policy_view()
        view.subscribe_dirty(self.ingest)
        # Observability: stage gauges are callbacks over ``stats`` (free on
        # the hot path); histograms are observed once per round.
        metrics = sim.metrics
        stats = self.stats
        self.metric_labels = {"pipeline": metrics.unique("pipeline")}
        metrics.gauge("pipeline_ingested", fn=lambda: stats.ingested, **self.metric_labels)
        metrics.gauge("pipeline_coalesced", fn=lambda: stats.coalesced, **self.metric_labels)
        metrics.gauge("pipeline_rounds", fn=lambda: stats.rounds, **self.metric_labels)
        metrics.gauge("pipeline_evaluations", fn=lambda: stats.evaluations, **self.metric_labels)
        metrics.gauge("pipeline_applies", fn=lambda: stats.applies, **self.metric_labels)
        metrics.gauge("pipeline_dirty_depth", fn=lambda: len(self._dirty), **self.metric_labels)
        self._h_batch = metrics.histogram(
            "pipeline_batch_size", bounds=COUNT_BUCKETS, **self.metric_labels
        )
        self._h_reaction = metrics.histogram(
            "pipeline_reaction_latency", **self.metric_labels
        )
        self._c_escalations = metrics.counter(
            "pipeline_escalations", **self.metric_labels
        )
        #: device -> cached ``pipeline_device_applies`` counter, so each
        #: actuation round does one dict lookup per record instead of a
        #: full label-set get-or-create through the registry.
        self._device_apply_counters: dict[str, Any] = {}

    def _refresh_policy_view(self) -> None:
        self._policy_keys = tuple(v.key for v in self.policy.space.variables())
        self._key_set = frozenset(self._policy_keys)
        self._defaults = {
            domain.variable.key: domain.values[0]
            for domain in self.policy.space.domains
        }

    @property
    def defaults(self) -> dict[str, str]:
        """Domain-baseline values for unobserved policy variables."""
        return self._defaults

    def system_state(self):
        """The current policy-relevant system state (explain/forensics API)."""
        return self.view.system_state(self._policy_keys, self._defaults)

    # ------------------------------------------------------------------
    # Stage 1: ingest
    # ------------------------------------------------------------------
    def ingest(self, key: str) -> None:
        """A view key changed: mark affected devices dirty for this round."""
        if key not in self._key_set:
            return
        affected = self.pruned.devices_affected_by(key)
        if not affected:
            return
        self.stats.ingested += 1
        at = self.sim.now
        # The causal trace active on the tracer's stack (the alert whose
        # handling produced this view change), if any, becomes the trigger
        # trace of every device this change marks dirty.
        trace = self.sim.tracer.current()
        dirty = self._dirty
        for device in affected:
            if device in dirty:
                self.stats.coalesced += 1
            else:
                dirty[device] = (key, at, trace)
        self._schedule_flush()

    # ------------------------------------------------------------------
    # Stage 2: escalate (delegated to the engine; context writes stay with
    # the controller, whose severity rules guard against downgrades)
    # ------------------------------------------------------------------
    def escalate(self, device: str, alert_kind: str, at: float) -> str | None:
        context = self.escalator.observe(device, alert_kind, at)
        if context is not None:
            self._c_escalations.inc()
        return context

    # ------------------------------------------------------------------
    # Stages 3 + 4: evaluate and actuate
    # ------------------------------------------------------------------
    def _schedule_flush(self) -> None:
        if not self._dirty:
            return
        if self.sim.executing:
            # Inside the event loop: coalesce every same-instant change
            # into one zero-delay round (FIFO tie-breaking guarantees the
            # flush runs after all already-queued events of this instant).
            if self._flush_event is None:
                self._flush_event = self.sim.schedule(0.0, self._flush)
        else:
            # Direct administrative/test call: effects must be visible
            # immediately, so run the round synchronously.
            self._flush()

    def _flush(self) -> None:
        self._flush_event = None
        if not self._dirty:
            return
        batch, self._dirty = self._dirty, {}
        self.stats.rounds += 1
        self._h_batch.observe(len(batch))
        orchestrator = self.orchestrator
        state = self.view.system_state(self._policy_keys, self._defaults)
        assignments = []
        triggers: dict[str, tuple[str, float, int | None]] = {}
        for device in sorted(batch):
            if device in orchestrator.pinned or device not in orchestrator.attachments:
                continue
            self.stats.evaluations += 1
            assignments.append((device, self.pruned.posture_for(state, device)))
            triggers[device] = batch[device]
        if not assignments:
            return
        records = orchestrator.apply_many(
            assignments,
            traces={dev: t[2] for dev, t in triggers.items() if t[2] is not None},
        )
        applied_at = self.sim.now
        tracer = self.sim.tracer
        metrics = self.sim.metrics
        round_no = self.stats.rounds
        for record in records:
            trigger_key, trigger_at, trace = triggers[record.device]
            reaction = ReactionRecord(
                device=record.device,
                trigger_key=trigger_key,
                trigger_at=trigger_at,
                applied_at=applied_at,
                posture=record.posture,
                trace_id=trace,
            )
            self.reactions.append(reaction)
            self._h_reaction.observe(reaction.latency)
            counter = self._device_apply_counters.get(record.device)
            if counter is None:
                counter = metrics.counter(
                    "pipeline_device_applies", device=record.device, **self.metric_labels
                )
                self._device_apply_counters[record.device] = counter
            counter.inc()
            if trace is not None:
                tracer.span(
                    trace,
                    "evaluate",
                    trigger_at,
                    applied_at,
                    device=record.device,
                    round=round_no,
                    key=trigger_key,
                    posture=record.posture,
                )
        self.stats.applies += len(records)
        self.sim.journal.record(
            "pipeline-round",
            round=round_no,
            batch=len(batch),
            evaluated=len(assignments),
            applied=len(records),
        )
        if self.bus is not None:
            self.bus.publish(
                "pipeline-round",
                source="pipeline",
                evaluated=len(assignments),
                applied=len(records),
            )

    def halt(self) -> None:
        """Stop the pipeline dead (the owning controller crashed).

        Cancels any pending zero-delay flush and clears the dirty set so
        a dead controller cannot actuate postures from beyond the grave.
        """
        if self._flush_event is not None:
            self._flush_event.cancel()
            self._flush_event = None
        self._dirty.clear()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def dirty_snapshot(self) -> list[list]:
        """The open round's dirty set as ``[[device, key, at], ...]``
        sorted -- trace ids are process-local and deliberately dropped."""
        return [
            [device, key, at]
            for device, (key, at, __) in sorted(self._dirty.items())
        ]

    def restore_dirty(self, data: Iterable[Iterable]) -> None:
        """Merge a :meth:`dirty_snapshot` into the open round (traceless)."""
        for device, key, at in data:
            self._dirty.setdefault(str(device), (str(key), float(at), None))
        self._schedule_flush()

    def evaluate_device(self, device: str, trigger_key: str) -> None:
        """Run an immediate round for one device (runtime policy updates)."""
        self._dirty.setdefault(
            device, (trigger_key, self.sim.now, self.sim.tracer.current())
        )
        self._flush()

    def enforce_all(self) -> None:
        """Evaluate every policy device against the current view, batched."""
        orchestrator = self.orchestrator
        state = self.view.system_state(self._policy_keys, self._defaults)
        orchestrator.apply_many(
            [
                (device, self.pruned.posture_for(state, device))
                for device in self.policy.devices
                if device in orchestrator.attachments
                and device not in orchestrator.pinned
            ]
        )

    # ------------------------------------------------------------------
    # Policy mutation
    # ------------------------------------------------------------------
    def add_rule(self, rule: "PostureRule") -> None:
        """Incrementally add a runtime rule: only the touched device's
        projected table and reverse-index entries are rebuilt."""
        self.pruned.add_rule(rule)
        self._refresh_policy_view()
        # The serialized rule makes this entry a write-ahead-log record: a
        # restored controller can re-add the rule from the journal alone.
        self.sim.journal.record(
            "policy-update",
            device=rule.device,
            rule_id=rule.rule_id,
            predicate=str(rule.predicate),
            posture=rule.posture.name,
            priority=rule.priority,
            rule={
                "when": dict(rule.predicate.requirements),
                "device": rule.device,
                "priority": rule.priority,
                "posture": posture_to_dict(rule.posture),
            },
        )
