"""The IoTSec controller.

Closes the loop of Figure 2: events from devices and µmboxes flow in over
the control channel, the global view updates, device security contexts
escalate, the policy FSM is re-evaluated for the affected devices, and the
orchestrator redeploys postures and flow rules -- all in simulated time, so
reaction latency is a first-class measurement.

The loop itself runs through the staged reactive pipeline
(:mod:`repro.core.pipeline`): ingest -> escalate -> evaluate -> actuate.
The controller owns the *policy* of the loop -- which alerts matter, when
contexts escalate, what counts as an insider -- and delegates the
mechanics (dirty tracking, same-instant batching, batched actuation) to
:class:`~repro.core.pipeline.ReactivePipeline`.

Context escalation (how raw alerts become the paper's
normal/suspicious/compromised contexts) is policy too: an
:class:`EscalationRule` maps an alert kind and a repetition threshold to a
context value.  Defaults implement the narrative of Figs. 3-5: a backdoor
signature match or repeated failed logins make a device *suspicious*; a
confirmed exfiltration or sustained abuse makes it *compromised*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.events import EventBus
from repro.core.orchestrator import PostureOrchestrator
from repro.core.overload import (
    CLASS_ENFORCING,
    CLASS_MONITOR,
    CLASS_TELEMETRY,
    IngestConfig,
    IngestQueue,
)
from repro.core.pipeline import (
    DEFAULT_ESCALATIONS,
    EscalationRule,
    ReactionRecord,
    ReactivePipeline,
)
from repro.core.view import GlobalView
from repro.obs.stream import DeadLetterQueue, StreamConsumer
from repro.policy.context import NORMAL, SEVERITY, UNPATCHED
from repro.policy.fsm import PolicyFSM
from repro.sdn.channel import ControlChannel, ControlMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.devices.base import IoTDevice
    from repro.environment.engine import Environment
    from repro.netsim.packet import Packet
    from repro.netsim.simulator import Simulator
    from repro.netsim.switch import Switch
    from repro.netsim.topology import Topology
    from repro.policy.pruning import PrunedPolicy

__all__ = [
    "DEFAULT_ESCALATIONS",
    "EscalationRule",
    "IoTSecController",
    "ReactionRecord",
]

_SEVERITY = SEVERITY


class IoTSecController:
    """The logically centralized controller of Figure 2."""

    def __init__(
        self,
        name: str,
        sim: "Simulator",
        policy: PolicyFSM,
        orchestrator: PostureOrchestrator,
        channel: ControlChannel,
        topology: "Topology | None" = None,
        escalations: tuple[EscalationRule, ...] = DEFAULT_ESCALATIONS,
        ingest: IngestConfig | None = None,
        durable_telemetry: bool = False,
        host_trust: Any = None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.policy = policy
        self.orchestrator = orchestrator
        self.channel = channel
        self.topology = topology
        self.escalations = escalations
        self.view = GlobalView(sim)
        self.bus = EventBus(sim)
        self.pipeline = ReactivePipeline(
            sim=sim,
            view=self.view,
            policy=policy,
            orchestrator=orchestrator,
            escalations=escalations,
            bus=self.bus,
        )
        self.devices: dict[str, "IoTDevice"] = {}
        self.packet_ins = 0
        #: Set by :meth:`crash` -- a dead controller processes nothing.
        self.crashed = False
        #: Switches this controller serves packet-ins for (detached on crash).
        self._adopted: list["Switch"] = []
        self.ingest_config = ingest
        #: Optional bounded priority ingest queue (None = direct dispatch).
        self.ingest: IngestQueue | None = (
            IngestQueue(
                sim,
                handler=lambda payload: self._dispatch_alert(*payload),
                config=ingest,
                name=name,
            )
            if ingest is not None
            else None
        )
        channel.register(name, self.on_control_message)
        # Hot-path dispatch: control-message kinds resolve through one dict
        # lookup instead of an if/elif chain that grows with each kind.
        self._control_dispatch: dict[str, Any] = {
            "alert": self._on_alert_message,
            "context": self._on_context_message,
        }
        #: Durable telemetry plane (opt-in): the consumer end of every
        #: host's store-and-forward stream, plus the dead-letter queue for
        #: records refused at the door (schema failures, flagged hosts).
        self.durable_telemetry = durable_telemetry
        self.dlq: DeadLetterQueue | None = None
        self.stream: StreamConsumer | None = None
        if durable_telemetry:
            self.dlq = DeadLetterQueue(sim, name=name)
            self.stream = StreamConsumer(
                sim,
                channel,
                name,
                deliver=self._on_alert,
                dlq=self.dlq,
                defer=self._defer_bulk,
                host_trust=host_trust,
            )
            self._control_dispatch["stream"] = self.stream.on_batch
        #: Per-device sensor maps (``report_key -> policy variable``),
        #: cached at registration so telemetry ingest never rebuilds them.
        self._sensor_maps: dict[str, dict[str, str]] = {}
        # Observability: alert ingress by kind (cached counters) plus a
        # packet-in gauge over the attribute the data path increments.
        metrics = sim.metrics
        self.metric_labels = {"controller": metrics.unique(name)}
        metrics.gauge(
            "controller_packet_ins", fn=lambda: self.packet_ins, **self.metric_labels
        )
        self._alert_counters: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Pipeline-derived state (kept as attributes of the controller so the
    # established surface -- reactions, pruned, defaults -- stays stable)
    # ------------------------------------------------------------------
    @property
    def pruned(self) -> "PrunedPolicy":
        return self.pipeline.pruned

    @property
    def reactions(self) -> list[ReactionRecord]:
        return self.pipeline.reactions

    @property
    def _defaults(self) -> dict[str, str]:
        return self.pipeline.defaults

    @property
    def _alert_times(self) -> dict[tuple[str, str], list[float]]:
        return self.pipeline.escalator._alert_times

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_device(self, device: "IoTDevice") -> None:
        """Track a device: seed its context and remember its sensor map."""
        self.devices[device.name] = device
        model = getattr(device, "model", None)
        if model is not None:
            self._sensor_maps[device.name] = dict(model.sensors)
        self.view.set(f"ctx:{device.name}", NORMAL)
        self.view.set(f"dev:{device.name}", device.state)

    def watch_environment(self, env: "Environment", sensing_latency: float = 0.05) -> None:
        """Learn environment levels as (slightly delayed) sensor reports."""

        def on_change(variable: str, level: str) -> None:
            self.sim.schedule(
                sensing_latency, self._ingest_env, variable, level
            )

        env.on_level_change(on_change)
        for name, variable in env.variables.items():
            self.view.set(f"env:{name}", variable.level)

    def _ingest_env(self, variable: str, level: str) -> None:
        if self.crashed:
            # Environment closures captured this (now dead) controller;
            # the live sensor feed belongs to its successor.
            return
        self.bus.publish("context", source="sensors", body={"variable": variable, "level": level})
        self.view.set(f"env:{variable}", level)

    def watch_disclosures(self, feed) -> None:
        """React to public vulnerability disclosures (section 2's
        unpatchable-flaw reality): every deployed instance of a disclosed
        SKU is marked ``unpatched`` so keyed policies harden proactively."""

        def on_disclosure(disclosure) -> None:
            for name, device in self.devices.items():
                if device.firmware.sku == disclosure.sku:
                    self.set_context(name, UNPATCHED)

        feed.subscribe(on_disclosure)

    def adopt_packet_in(self, switch: "Switch") -> None:
        """Serve as the switch's reactive forwarder."""
        switch.packet_in_handler = self._on_packet_in
        if switch not in self._adopted:
            self._adopted.append(switch)

    def _on_packet_in(self, switch: "Switch", packet: "Packet", in_port: int) -> None:
        self.packet_ins += 1
        # Device-to-device traffic must traverse the *destination's* µmbox
        # too: if the destination is tunnelled and has not inspected this
        # packet yet, re-encapsulate toward its µmbox instead of forwarding.
        attachment = self.orchestrator.attachments.get(packet.dst)
        if (
            attachment is not None
            and attachment.switch is switch
            and packet.dst in self.orchestrator.tunnels
            and packet.dst not in packet.meta.get("inspected_devices", ())
        ):
            from repro.sdn.tunnel import tunnel_packet

            outer = tunnel_packet(packet, switch.name, packet.dst)
            # Address the outer packet to the cluster host so intermediate
            # switches (enterprise core) can route it there.
            outer.dst = self.orchestrator.manager.host.name
            switch.send(outer, attachment.cluster_port)
            return
        if self.topology is None:
            return
        port = self.topology.next_hop_port(switch.name, packet.dst)
        if port is None:
            return
        # Inspected packets may legitimately hairpin: they arrived from the
        # cluster on the uplink and must leave through the same uplink
        # (re-tunnelling is prevented by the inspected_devices marking).
        if port != in_port or packet.meta.get("inspected"):
            switch.send(packet, port)

    # ------------------------------------------------------------------
    # Control-channel ingress
    # ------------------------------------------------------------------
    def on_control_message(self, message: ControlMessage) -> None:
        if self.crashed:
            return
        handler = self._control_dispatch.get(message.kind)
        if handler is not None:
            handler(message)

    def _on_alert_message(self, message: ControlMessage) -> None:
        self._on_alert(message.body, message.sent_at)

    def _on_context_message(self, message: ControlMessage) -> None:
        variable = str(message.body.get("variable", ""))
        level = str(message.body.get("level", ""))
        if variable:
            self.view.set(f"env:{variable}", level)

    def _defer_bulk(self) -> bool:
        """Shed mode: tell the stream consumer to leave bulk records in
        the host buffer (defer-to-buffer) instead of dropping them."""
        return self.ingest is not None and self.ingest.would_shed(CLASS_TELEMETRY)

    def _alert_class(self, device: str, kind: str) -> int:
        """Shedding priority: enforcing-posture alerts > monitor > telemetry."""
        if kind == "telemetry":
            return CLASS_TELEMETRY
        posture = self.orchestrator.current.get(device)
        if (
            posture is not None
            and not posture.is_permissive
            and posture.name != "monitor"
        ):
            return CLASS_ENFORCING
        return CLASS_MONITOR

    def _on_alert(self, body: dict[str, Any], sent_at: float) -> None:
        """Arrival: account for the alert, then queue or dispatch it."""
        device = str(body.get("device", ""))
        kind = str(body.get("kind", ""))
        # No defensive copy: ``**detail`` below already copies into the
        # published event's body, and nothing here mutates it.
        detail = body.get("detail") or {}
        self.bus.publish("alert", source=str(body.get("mbox", "")), device=device, kind_detail=kind, **detail)

        counter = self._alert_counters.get(kind)
        if counter is None:
            counter = self.sim.metrics.counter(
                "controller_alerts", kind=kind, **self.metric_labels
            )
            self._alert_counters[kind] = counter
        counter.inc()

        if self.ingest is not None:
            self.ingest.offer(self._alert_class(device, kind), (body, sent_at))
        else:
            self._dispatch_alert(body, sent_at)

    def _dispatch_alert(self, body: dict[str, Any], sent_at: float) -> None:
        """Service: the alert reached the front of the loop -- process it."""
        device = str(body.get("device", ""))
        kind = str(body.get("kind", ""))
        detail = body.get("detail") or {}  # read-only below; no copy needed
        if kind == "telemetry":
            self._ingest_telemetry(device, detail)
            return
        # Continue the causal trace the µmbox started: the time between the
        # alert leaving the host and arriving here is control-channel cost.
        tracer = self.sim.tracer
        trace = body.get("trace")
        if trace is not None:
            tracer.span(
                trace, "ingest-alert", sent_at, self.sim.now, device=device, kind=kind
            )
        self.sim.journal.record(
            "alert-ingest",
            device=device,
            trace=trace,
            alert_kind=kind,
            controller=self.name,
            sent_at=sent_at,
        )
        tracer.push(trace)
        try:
            self._escalate(device, kind, at=sent_at)
            # Insider escalation: when the offending *source* is one of our
            # own devices, it is being used as a launchpad -- flag it too.
            source = detail.get("src")
            if (
                isinstance(source, str)
                and source in self.devices
                and source != device
            ):
                # Journaled separately so the write-ahead-log replay can
                # rebuild the insider's escalation window too.
                self.sim.journal.record(
                    "alert-ingest",
                    device=source,
                    trace=trace,
                    alert_kind="insider",
                    controller=self.name,
                    sent_at=sent_at,
                )
                self._escalate(source, "insider", at=sent_at)
        finally:
            tracer.pop()

    def _ingest_telemetry(self, device: str, detail: dict[str, Any]) -> None:
        state = detail.get("state")
        if state is not None:
            self.view.set(f"dev:{device}", str(state))
        readings = detail.get("readings")
        if not readings:
            return
        sensor_map = self._sensor_maps.get(device)
        if sensor_map is None:
            model = getattr(self.devices.get(device), "model", None)
            if model is None:
                return
            sensor_map = self._sensor_maps[device] = dict(model.sensors)
        for report_key, value in readings.items():
            variable = sensor_map.get(report_key)
            if variable is not None:
                self.view.set(f"env:{variable}", str(value))

    # ------------------------------------------------------------------
    # Escalation
    # ------------------------------------------------------------------
    def _escalate(self, device: str, alert_kind: str, at: float) -> None:
        if not device:
            return
        context = self.pipeline.escalate(device, alert_kind, at)
        if context is not None:
            trace = self.sim.tracer.current()
            if trace is not None:
                self.sim.tracer.span(
                    trace,
                    "escalate",
                    self.sim.now,
                    self.sim.now,
                    device=device,
                    kind=alert_kind,
                    context=context,
                )
            self.sim.journal.record(
                "escalation",
                device=device,
                trace=trace,
                alert_kind=alert_kind,
                context=context,
            )
            self.set_context(device, context)

    def set_context(self, device: str, context: str) -> None:
        """Raise a device's security context (never silently lowers it)."""
        key = f"ctx:{device}"
        current = self.view.get(key) or NORMAL
        if _SEVERITY.get(context, 0) >= _SEVERITY.get(current, 0):
            if context != current:
                self.sim.journal.record(
                    "context",
                    device=device,
                    trace=self.sim.tracer.current(),
                    context=context,
                    previous=current,
                )
            self.view.set(key, context)

    def clear_context(self, device: str) -> None:
        """Administrative reset to normal (the admin vetted the device)."""
        self.view.set(f"ctx:{device}", NORMAL)

    # ------------------------------------------------------------------
    # The policy loop (delegated to the reactive pipeline)
    # ------------------------------------------------------------------
    def update_policy(self, rule) -> None:
        """Add a rule to the live policy and re-enforce the affected device.

        Policies are not static in IoT (section 5.1's whole point): new
        signatures, disclosures, or attack-graph hardening plans add rules
        at runtime.  The pruned lookup structure is updated *incrementally*
        -- only the touched device's projected table is rebuilt -- and that
        device re-evaluated immediately.
        """
        self.pipeline.add_rule(rule)
        if rule.device in self.orchestrator.attachments:
            self.pipeline.evaluate_device(rule.device, "policy-update")

    def enforce_all(self) -> None:
        """Evaluate and apply the posture of every policy device now."""
        self.pipeline.enforce_all()

    # ------------------------------------------------------------------
    # Failure
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Kill this controller instance: it stops processing everything.

        The endpoint is unregistered (in-flight reliable sends keep
        retrying and will deliver to whichever controller registers the
        name next -- restart or failover), adopted switches lose their
        packet-in handler (reactive forwarding goes dark), the pipeline
        is halted so no queued zero-delay round actuates posthumously,
        and any queued ingest work is discarded.
        """
        if self.crashed:
            return
        self.crashed = True
        self.channel.unregister(self.name)
        for switch in self._adopted:
            if switch.packet_in_handler == self._on_packet_in:
                switch.packet_in_handler = None
        self.pipeline.halt()
        dropped_queue = self.ingest.clear() if self.ingest is not None else 0
        self.sim.journal.record(
            "controller-crash",
            controller=self.name,
            queued_lost=dropped_queue,
            view_keys=len(self.view.entries),
        )

    # ------------------------------------------------------------------
    def context_of(self, device: str) -> str:
        return self.view.get(f"ctx:{device}") or NORMAL
