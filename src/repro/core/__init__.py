"""The IoTSec control platform (paper sections 2.2 and 5).

- :mod:`repro.core.view` -- the logically-centralized global view of
  device contexts, device states, and environment levels.
- :mod:`repro.core.events` -- the event bus between data plane, sensors,
  and controller.
- :mod:`repro.core.orchestrator` -- compiles postures into µmboxes plus
  edge-switch tunnel/bypass flow rules.
- :mod:`repro.core.controller` -- the IoTSec controller: consumes alerts
  and context reports, escalates device security contexts, re-evaluates
  the policy FSM, and redeploys postures.
- :mod:`repro.core.hierarchical` -- two-level control: local controllers
  own frequently-interacting partitions, the global controller owns
  cross-partition rules (section 5.1's scaling proposal).
- :mod:`repro.core.deployment` -- the harness that assembles a complete
  secured deployment (topology, devices, environment, cluster, controller).
"""

from repro.core.controller import IoTSecController
from repro.core.deployment import SecuredDeployment
from repro.core.view import GlobalView

__all__ = ["GlobalView", "IoTSecController", "SecuredDeployment"]
