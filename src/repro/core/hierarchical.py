"""Hierarchical control (paper section 5.1).

"One possible approach to handle the consistency and update challenges is
to logically partition the set of IoT devices depending on the frequency in
the interaction dependencies.  Thus, we can have a hierarchical control
architecture where frequently interacting components are handled together
by a low-level controller and infrequent interactions are handled at the
global controller."

The model: each controller is a single-server FIFO queue with a per-event
service time, reached over a control channel with a one-way latency.  Local
controllers sit on-premise (sub-millisecond reach); the global controller
is remote (tens of milliseconds).  An event is handled locally when every
policy rule it can trigger stays inside the event's partition; otherwise it
is forwarded up.  Bench E6 measures reaction latency distributions and
global-controller load, flat vs hierarchical, as event rate grows.

Partitioning comes from the policy itself:
:func:`partition_by_independence` reuses
:func:`repro.policy.pruning.independence_groups` -- variables that never
co-occur in a rule can safely live under different local controllers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.policy.fsm import PolicyFSM
from repro.policy.pruning import independence_groups, relevant_variables

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator


@dataclass
class HandledEvent:
    """One event's journey through the control hierarchy."""

    event_id: int
    device: str
    emitted_at: float
    handled_at: float
    handled_by: str
    escalated: bool

    @property
    def latency(self) -> float:
        return self.handled_at - self.emitted_at


class ControllerQueue:
    """A single-server FIFO event processor in simulated time."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        service_time: float,
        channel_latency: float,
    ) -> None:
        if service_time < 0 or channel_latency < 0:
            raise ValueError("latencies must be >= 0")
        self.sim = sim
        self.name = name
        self.service_time = service_time
        self.channel_latency = channel_latency
        self.busy_until = 0.0
        self.processed = 0
        self.busy_time = 0.0

    def submit(self, emitted_at: float) -> float:
        """Feed one event; returns the simulated completion time.

        ``emitted_at`` is when the event *left its source* -- the device
        for a first hop, the local controller's completion time for a
        forwarded hop -- so a chained submission starts its channel
        crossing then, not at whatever ``sim.now`` happens to be when the
        caller runs.
        """
        arrival = emitted_at + self.channel_latency
        start = max(arrival, self.busy_until)
        done = start + self.service_time
        self.busy_until = done
        self.processed += 1
        self.busy_time += self.service_time
        return done

    def utilization(self, horizon: float) -> float:
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)


def partition_by_independence(policy: PolicyFSM) -> dict[str, int]:
    """Assign each device to a partition from the policy's independence
    groups.  Devices whose context variables share a group must share a
    local controller."""
    groups = independence_groups(policy)
    assignment: dict[str, int] = {}
    for index, group in enumerate(sorted(groups, key=lambda g: sorted(g)[0])):
        for key in group:
            if key.startswith("ctx:"):
                assignment[key[4:]] = index
    # Devices with no rules interact with nothing, so each owns an
    # isolated singleton partition -- lumping them into one shared bucket
    # would serialize unrelated devices behind a single local controller.
    next_free = len(groups)
    for device in sorted(policy.devices):
        if device not in assignment:
            assignment[device] = next_free
            next_free += 1
    return assignment


def crossing_devices(policy: PolicyFSM, partition: dict[str, int]) -> set[str]:
    """Devices whose posture depends on variables owned by *another*
    partition: their events must always escalate to the global controller."""
    # Which partition owns each variable?  A variable belongs to the
    # partition of any device context in its independence group; env
    # variables referenced only by one partition's rules belong there.
    owner: dict[str, int] = {}
    for device, part in partition.items():
        owner[f"ctx:{device}"] = part
    for device in policy.devices:
        part = partition.get(device)
        if part is None:
            continue
        for key in relevant_variables(policy, device):
            owner.setdefault(key, part)

    crossing = set()
    for device in policy.devices:
        part = partition.get(device)
        for key in relevant_variables(policy, device):
            if owner.get(key, part) != part:
                crossing.add(device)
                break
        # Also: if this device's context drives another partition's device.
        own_key = f"ctx:{device}"
        for other in policy.devices:
            if other == device:
                continue
            if own_key in relevant_variables(policy, other) and partition.get(
                other
            ) != part:
                crossing.add(device)
                break
    return crossing


class FlatControl:
    """Every event goes to the one (remote) global controller."""

    def __init__(
        self,
        sim: "Simulator",
        service_time: float = 0.0005,
        global_latency: float = 0.020,
    ) -> None:
        self.sim = sim
        self.global_controller = ControllerQueue(
            sim, "global", service_time, global_latency
        )
        self.handled: list[HandledEvent] = []
        self._ids = 0

    def emit(self, device: str) -> HandledEvent:
        self._ids += 1
        done = self.global_controller.submit(self.sim.now)
        record = HandledEvent(
            event_id=self._ids,
            device=device,
            emitted_at=self.sim.now,
            handled_at=done,
            handled_by="global",
            escalated=False,
        )
        self.handled.append(record)
        return record

    def global_load(self) -> int:
        return self.global_controller.processed


class HierarchicalControl:
    """Local controllers per partition; escalation for crossing devices."""

    def __init__(
        self,
        sim: "Simulator",
        partition: dict[str, int],
        crossing: set[str],
        service_time: float = 0.0005,
        local_latency: float = 0.001,
        global_latency: float = 0.020,
    ) -> None:
        self.sim = sim
        self.partition = dict(partition)
        self.crossing = set(crossing)
        self.locals: dict[int, ControllerQueue] = {}
        for part in sorted(set(partition.values())):
            self.locals[part] = ControllerQueue(
                sim, f"local-{part}", service_time, local_latency
            )
        self.global_controller = ControllerQueue(
            sim, "global", service_time, global_latency
        )
        self.handled: list[HandledEvent] = []
        self._ids = 0

    def emit(self, device: str) -> HandledEvent:
        self._ids += 1
        part = self.partition.get(device)
        escalate = device in self.crossing or part is None
        if escalate:
            # The local controller triages, then forwards up: the global
            # hop's channel crossing starts when local triage *completes*,
            # not at emission time -- otherwise escalation latency hides
            # the entire local stage.
            forwarded_at = self.sim.now
            if part is not None:
                forwarded_at = self.locals[part].submit(self.sim.now)
            done = self.global_controller.submit(forwarded_at)
            handled_by = "global"
        else:
            done = self.locals[part].submit(self.sim.now)
            handled_by = f"local-{part}"
        record = HandledEvent(
            event_id=self._ids,
            device=device,
            emitted_at=self.sim.now,
            handled_at=done,
            handled_by=handled_by,
            escalated=escalate,
        )
        self.handled.append(record)
        return record

    def global_load(self) -> int:
        return self.global_controller.processed

    def local_load(self) -> int:
        return sum(q.processed for q in self.locals.values())


def latency_percentiles(records: list[HandledEvent]) -> dict[str, float]:
    """Median/p99/max reaction latency for a run's handled events."""
    if not records:
        return {"p50": 0.0, "p99": 0.0, "max": 0.0}
    latencies = sorted(r.latency for r in records)

    def pct(p: float) -> float:
        # Nearest-rank: the smallest value with at least p*n observations
        # at or below it is element ceil(p*n) (1-based).  ``int(p*n)``
        # is off by one -- it makes p99 equal max at n=100 and biases p50
        # high on even-length samples.
        index = min(len(latencies) - 1, max(0, math.ceil(p * len(latencies)) - 1))
        return latencies[index]

    return {"p50": pct(0.50), "p99": pct(0.99), "max": latencies[-1]}
