"""Quarantined telemetry as poisoning evidence (ROADMAP open item 3).

PR 7 gave the telemetry plane a :class:`~repro.obs.stream.DeadLetterQueue`:
malformed or reputation-flagged alert records are quarantined instead of
vanishing.  Until now that evidence stopped there -- the federation
repository counted its own quarantines, but a host spamming the *local*
controller with poisonous telemetry kept its full crowdsourcing
reputation.  This module closes the loop for E3: every quarantined record
becomes beta-reputation evidence against the host that shipped it, so a
poisoning host's *published signatures* sink below the accept threshold
and its already-distributed ones are revoked.

The bridge polls rather than hooks: the DLQ stays a passive quarantine
(its consumers should not be able to crash the stream path), and the
sweep cadence bounds how stale the evidence can be.  Attribution is by
the quarantine's ``host`` field -- the mbox host that shipped the refused
record -- mapped to the repository's contributor identity.  Reputation is
keyed on *pseudonyms* (the publish path scrubs raw identities), so the
default mapping applies the repository's own salted pseudonym to the host
name; pass ``reporter_of`` when hosts publish under a site identity
instead of a per-host one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.learning.anonymize import pseudonym

if TYPE_CHECKING:  # pragma: no cover
    from repro.learning.repository import CrowdRepository
    from repro.obs.stream import DeadLetterQueue

__all__ = ["DlqEvidenceBridge", "attach_dlq_evidence"]


class DlqEvidenceBridge:
    """Sweep a dead-letter queue into repository reputation evidence."""

    def __init__(
        self,
        dlq: "DeadLetterQueue",
        repository: "CrowdRepository",
        period: float = 5.0,
        reporter_of: Callable[[str], str] | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive (got {period})")
        self.dlq = dlq
        self.repository = repository
        self.sim = dlq.sim
        self.period = period
        salt = repository.anonymizer.salt
        self.reporter_of = reporter_of or (lambda host: pseudonym(host, salt))
        #: Quarantines already converted to evidence (cursor into the
        #: DLQ's monotonic ``quarantined`` counter).
        self.swept = 0
        self.evidence_by_reporter: dict[str, int] = {}
        self.revoked_total = 0
        metrics = self.sim.metrics
        labels = {"dlq": metrics.unique(dlq.name)}
        self._c_evidence = metrics.counter("dlq_poison_evidence", **labels)
        metrics.gauge(
            "dlq_evidence_reporters",
            fn=lambda: len(self.evidence_by_reporter),
            **labels,
        )

    def start(self) -> "DlqEvidenceBridge":
        self.sim.every(self.period, self.sweep)
        return self

    def sweep(self) -> int:
        """Convert quarantines since the last sweep into evidence.

        Returns how many were processed.  The DLQ's bounded ring may have
        rotated past some of them; those are still *counted* against the
        ring's most recent shipper mix by processing whatever is retained
        (rotation beyond a sweep period means the host was flooding --
        exactly the behavior the evidence should punish).
        """
        new = self.dlq.quarantined - self.swept
        if new <= 0:
            return 0
        recent = self.dlq.entries()[-new:] if new <= len(self.dlq) else self.dlq.entries()
        self.swept = self.dlq.quarantined
        reputation = self.repository.reputation
        touched: set[str] = set()
        for entry in recent:
            reporter = self.reporter_of(entry["host"])
            reputation.feedback(reporter, validated=False)
            self.evidence_by_reporter[reporter] = (
                self.evidence_by_reporter.get(reporter, 0) + 1
            )
            self._c_evidence.inc()
            touched.add(reporter)
            self.sim.journal.record(
                "poison-evidence",
                device=entry["device"],
                host=entry["host"],
                reporter=reporter,
                reason=entry["reason"],
                score=round(reputation.score_of(reporter), 4),
            )
        for reporter in touched:
            self.revoked_total += self.repository.reconsider(reporter)
        return len(recent)

    def stats(self) -> dict[str, object]:
        return {
            "swept": self.swept,
            "reporters": dict(self.evidence_by_reporter),
            "revoked_total": self.revoked_total,
        }


def attach_dlq_evidence(
    dlq: "DeadLetterQueue",
    repository: "CrowdRepository",
    period: float = 5.0,
    reporter_of: Callable[[str], str] | None = None,
) -> DlqEvidenceBridge:
    """Wire a DLQ into a repository's reputation loop and start sweeping."""
    return DlqEvidenceBridge(
        dlq, repository, period=period, reporter_of=reporter_of
    ).start()
