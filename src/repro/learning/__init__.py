"""Learning security policies (paper section 4).

Two halves, mirroring the paper:

Signatures (section 4.1)
    - :mod:`repro.learning.signatures` -- the common signature format.
    - :mod:`repro.learning.repository` -- the anonymous crowdsourced
      publish/subscribe repository, keyed by device SKU.
    - :mod:`repro.learning.anonymize` -- privacy scrubbing of reports.
    - :mod:`repro.learning.reputation` -- reputation/voting against
      poisoned or misconfigured signatures.
    - :mod:`repro.learning.honeypot` -- the per-SKU honeypot baseline the
      paper argues cannot scale.

Cross-device interactions (section 4.2)
    - :mod:`repro.learning.abstract_env` -- the qualitative environment
      model shared by the fuzzer and the attack-graph builder.
    - :mod:`repro.learning.fuzzing` -- model-based fuzzing of the joint
      device x environment space to discover implicit couplings.
    - :mod:`repro.learning.modelextract` -- empirical model extraction from
      an instrumented (simulated) testbed.
    - :mod:`repro.learning.fsmlearner` -- learn a device's FSM by
      systematic actuation (the section's stated future work).
    - :mod:`repro.learning.attackgraph` -- multi-stage attack discovery
      and greedy hardening plans.
    - :mod:`repro.learning.anomaly` -- per-device behavioural profiles.

Operational feeds
    - :mod:`repro.learning.traceminer` -- mine signatures from labelled
      packet captures ("publish traces or signatures").
    - :mod:`repro.learning.disclosure` -- public vulnerability disclosures
      driving the ``unpatched`` context.
"""

from repro.learning.repository import CrowdRepository
from repro.learning.signatures import AttackSignature, SignatureMatch

__all__ = ["AttackSignature", "CrowdRepository", "SignatureMatch"]
