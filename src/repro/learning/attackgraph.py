"""Attack-graph generation and analysis.

Section 4.2: "such models can also be used to automatically identify
potential multi-stage attacks due to cross-device interactions; e.g.,
triggering device X to transition to state SX and then using that to reach
an eventual goal state (e.g., unlocking the door).  To this end, we can
borrow ideas from attack graph analysis in the security literature
[MulVal, Sheyner et al.]."

Facts are nodes, inference rules add edges:

- ``attacker(net)``  --[exploit per firmware flaw]-->  ``control(device)``
- ``control(device)``  -->  ``state(device, s)`` for every reachable s
- ``state(device, s)``  --[physics]-->  ``env(var, level)`` (effects,
  bindings, via the abstract environment's response rules)
- ``env(var, level)``  --[trigger]-->  ``state(device2, s2)``
- ``env(var, level)``  --[recipe]-->  ``state(device2, s2)`` (the victim's
  own automation is an inference rule -- that is the thermal break-in)

Paths from the attacker fact to a goal fact are multi-stage attacks; the
analysis reports path counts, shortest depth, and cut devices (which single
device, hardened, severs all paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import networkx as nx

from repro.devices.firmware import Firmware
from repro.devices.model import DeviceModel
from repro.learning.abstract_env import AbstractEnvironment, default_world
from repro.policy.ifttt import Recipe

ATTACKER = ("attacker", "net", "")


def control(device: str) -> tuple[str, str, str]:
    return ("control", device, "")


def state(device: str, st: str) -> tuple[str, str, str]:
    return ("state", device, st)


def envfact(variable: str, level: str) -> tuple[str, str, str]:
    return ("env", variable, level)


#: Exploit primitive -> the µmbox mitigation that neutralizes it (the
#: same mapping the Table 1 registry uses, inverted for hardening plans).
EXPLOIT_TO_MITIGATION: dict[str, str] = {
    "default_credential_hijack": "password_proxy",
    "brute_force_login": "password_proxy",
    "open_access_control": "stateful_firewall",
    "backdoor_command": "stateful_firewall",
    "unauthenticated_command": "command_whitelist",
    "firmware_key_extraction": "password_proxy",
}

#: Firmware flaw class -> the exploit primitive granting control.
FLAW_TO_EXPLOIT: dict[str, str] = {
    "exposed-credentials": "default_credential_hijack",
    "weak-credentials": "brute_force_login",
    "exposed-access": "open_access_control",
    "backdoor": "backdoor_command",
    "no-credentials": "unauthenticated_command",
    "embedded-keys": "firmware_key_extraction",
    # open-dns-resolver grants reflection, not control -- excluded here.
}


@dataclass
class AttackPath:
    """One multi-stage attack: the fact chain from attacker to goal."""

    facts: tuple[tuple[str, str, str], ...]
    exploits: tuple[str, ...]

    @property
    def stages(self) -> int:
        return len(self.facts) - 1

    def devices_touched(self) -> set[str]:
        return {
            name for kind, name, __ in self.facts if kind in ("control", "state")
        }

    def __str__(self) -> str:
        def fmt(fact: tuple[str, str, str]) -> str:
            kind, a, b = fact
            if kind == "attacker":
                return "ATTACKER"
            if kind == "control":
                return f"control({a})"
            if kind == "state":
                return f"{a}={b}"
            return f"env:{a}={b}"

        return " -> ".join(fmt(f) for f in self.facts)


@dataclass
class GraphReport:
    nodes: int
    edges: int
    reachable_facts: int
    paths_to_goal: int
    shortest_depth: int | None
    cut_devices: list[str] = field(default_factory=list)


class AttackGraphBuilder:
    """Builds the fact graph for one deployment."""

    def __init__(
        self,
        devices: Mapping[str, tuple[DeviceModel, Firmware]],
        environment: AbstractEnvironment | None = None,
        recipes: Iterable[Recipe] = (),
    ) -> None:
        self.devices = dict(devices)
        self.environment = environment or default_world()
        self.recipes = tuple(recipes)
        self.graph = nx.DiGraph()
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        g = self.graph
        g.add_node(ATTACKER)

        # Rule 1: flaws grant control.
        for name, (model, firmware) in self.devices.items():
            for flaw in sorted(firmware.flaw_classes()):
                exploit = FLAW_TO_EXPLOIT.get(flaw)
                if exploit is not None:
                    g.add_edge(ATTACKER, control(name), exploit=exploit, rule="flaw")

        # Rule 2: control drives the FSM anywhere reachable.
        for name, (model, __) in self.devices.items():
            for st in sorted(model.reachable_states()):
                g.add_edge(control(name), state(name, st), rule="drive")

        # Rule 3: device states move the environment.
        for name, (model, __) in self.devices.items():
            for st in sorted(model.states):
                inputs = model.effect_inputs(st)
                for rule in self.environment.rules:
                    if inputs.get(rule.input_key, 0.0) > rule.threshold:
                        g.add_edge(
                            state(name, st),
                            envfact(rule.variable, rule.level),
                            rule="physics",
                        )
                for variable, level in model.binding_for(st):
                    g.add_edge(
                        state(name, st), envfact(variable, level), rule="binding"
                    )

        # Rule 4: environment levels trigger devices.
        for name, (model, __) in self.devices.items():
            for trigger in model.triggers:
                for st in sorted(model.states):
                    nxt = model.next_state(st, trigger.command)
                    if nxt != st:
                        g.add_edge(
                            envfact(trigger.variable, trigger.level),
                            state(name, nxt),
                            rule="trigger",
                        )

        # Rule 5: automation recipes are attacker-usable inference rules.
        for recipe in self.recipes:
            target = self.devices.get(recipe.action_device)
            if target is None:
                continue
            model, __ = target
            source: tuple[str, str, str] | None = None
            if recipe.trigger_variable.startswith("env:"):
                source = envfact(recipe.trigger_variable[4:], recipe.trigger_value)
            elif recipe.trigger_variable.startswith("dev:"):
                source = state(recipe.trigger_variable[4:], recipe.trigger_value)
            if source is None:
                continue
            for st in sorted(model.states):
                nxt = model.next_state(st, recipe.action_command)
                if nxt != st:
                    g.add_edge(
                        source,
                        state(recipe.action_device, nxt),
                        rule="recipe",
                        recipe=recipe.name,
                    )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def reachable(self) -> set[tuple[str, str, str]]:
        return nx.descendants(self.graph, ATTACKER) | {ATTACKER}

    def can_reach(self, goal: tuple[str, str, str]) -> bool:
        return goal in self.graph and nx.has_path(self.graph, ATTACKER, goal)

    def paths_to(
        self, goal: tuple[str, str, str], max_paths: int = 1000
    ) -> list[AttackPath]:
        """All simple attack paths (bounded) from the attacker to ``goal``."""
        if goal not in self.graph or not self.can_reach(goal):
            return []
        paths = []
        for facts in nx.all_simple_paths(self.graph, ATTACKER, goal):
            exploits = tuple(
                self.graph.edges[a, b].get("exploit", self.graph.edges[a, b]["rule"])
                for a, b in zip(facts, facts[1:])
            )
            paths.append(AttackPath(facts=tuple(facts), exploits=exploits))
            if len(paths) >= max_paths:
                break
        paths.sort(key=lambda p: (p.stages, str(p)))
        return paths

    def shortest_attack(self, goal: tuple[str, str, str]) -> AttackPath | None:
        if not self.can_reach(goal):
            return None
        facts = nx.shortest_path(self.graph, ATTACKER, goal)
        exploits = tuple(
            self.graph.edges[a, b].get("exploit", self.graph.edges[a, b]["rule"])
            for a, b in zip(facts, facts[1:])
        )
        return AttackPath(facts=tuple(facts), exploits=exploits)

    def cut_devices(self, goal: tuple[str, str, str]) -> list[str]:
        """Devices whose hardening (removing their control fact) severs
        every attack path to the goal: where to spend the first µmbox."""
        if not self.can_reach(goal):
            return []
        cuts = []
        for name in sorted(self.devices):
            g = self.graph.copy()
            node = control(name)
            if node in g:
                g.remove_node(node)
            if goal not in g or not nx.has_path(g, ATTACKER, goal):
                cuts.append(name)
        return cuts

    def hardening_plan(
        self, goal: tuple[str, str, str], max_paths: int = 1000
    ) -> list[tuple[str, str]]:
        """Recommend ``(device, mitigation)`` pairs that sever every path.

        Greedy: repeatedly harden the device whose control fact lies on the
        most remaining attack paths, until the goal is unreachable.  The
        mitigation is looked up from the exploit that granted control.
        """
        plan: list[tuple[str, str]] = []
        g = self.graph.copy()
        while goal in g and nx.has_path(g, ATTACKER, goal):
            paths = []
            for facts in nx.all_simple_paths(g, ATTACKER, goal):
                paths.append(facts)
                if len(paths) >= max_paths:
                    break
            counts: dict[str, int] = {}
            for facts in paths:
                for fact in facts:
                    if fact[0] == "control":
                        counts[fact[1]] = counts.get(fact[1], 0) + 1
            if not counts:
                break  # paths exist with no controllable device: give up
            device = max(sorted(counts), key=lambda d: counts[d])
            exploit = g.edges[ATTACKER, control(device)].get("exploit", "unknown")
            plan.append((device, EXPLOIT_TO_MITIGATION.get(exploit, "quarantine")))
            g.remove_node(control(device))
        return plan

    def report(self, goal: tuple[str, str, str], max_paths: int = 1000) -> GraphReport:
        paths = self.paths_to(goal, max_paths=max_paths)
        shortest = self.shortest_attack(goal)
        return GraphReport(
            nodes=self.graph.number_of_nodes(),
            edges=self.graph.number_of_edges(),
            reachable_facts=len(self.reachable()),
            paths_to_goal=len(paths),
            shortest_depth=shortest.stages if shortest else None,
            cut_devices=self.cut_devices(goal),
        )
