"""Vulnerability-disclosure feed.

Section 2's reality: "due to the longevity of IoT devices, software
updates will likely be unavailable ... or be too late to prevent early
exploits."  When a flaw in a SKU becomes public (a SHODAN finding, a CVE),
the *device* usually never changes -- but the network can react
immediately: IoTSec marks every deployed instance of the SKU as
``unpatched`` and policies keyed on that context harden proactively,
before any attack traffic arrives.

The feed is a tiny pub/sub over simulated time, mirroring the signature
repository's shape (a real deployment would fold both into one service).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator

_IDS = itertools.count(1)


@dataclass(frozen=True)
class Disclosure:
    """One public vulnerability report for a SKU."""

    sku: str
    flaw_class: str
    description: str = ""
    disclosure_id: int = field(default_factory=lambda: next(_IDS))


DisclosureCallback = Callable[[Disclosure], None]


class DisclosureFeed:
    """Publish/subscribe of SKU vulnerability disclosures."""

    def __init__(self, sim: "Simulator", propagation_delay: float = 60.0) -> None:
        self.sim = sim
        self.propagation_delay = propagation_delay
        self.disclosures: list[Disclosure] = []
        self._subscribers: list[DisclosureCallback] = []

    def publish(self, sku: str, flaw_class: str, description: str = "") -> Disclosure:
        disclosure = Disclosure(sku=sku, flaw_class=flaw_class, description=description)
        self.disclosures.append(disclosure)
        for callback in list(self._subscribers):
            self.sim.schedule(self.propagation_delay, callback, disclosure)
        return disclosure

    def subscribe(self, callback: DisclosureCallback) -> None:
        """New subscribers also receive the backlog (after the delay)."""
        self._subscribers.append(callback)
        for disclosure in self.disclosures:
            self.sim.schedule(self.propagation_delay, callback, disclosure)

    def disclosures_for(self, sku: str) -> list[Disclosure]:
        return [d for d in self.disclosures if d.sku == sku]
