"""Per-device behavioural anomaly profiles.

Section 4: "applying simple anomaly detection to IoT also does not scale
since the range of possible normal behaviors is large and potentially very
dynamic and taking cross device interactions is further challenging."  Our
answer, consistent with section 3's context argument, is to make profiles
*context-conditional*: the frequency model keys on
``(command, source, context)`` rather than command alone, so "thermostat
heats while occupant present" and "thermostat heats while house empty" are
different events with different support.

Two detectors:

- :class:`BehaviorProfile` -- categorical events (commands) with Laplace-
  smoothed frequencies; an event is anomalous when its conditional
  probability falls below threshold.
- :class:`RateProfile` -- volumetric (bytes/packets per window) with an
  EWMA mean and deviation bound; catches brute-force storms and DNS
  reflection take-off without any signature.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BehaviorEvent:
    """One observed control event in context."""

    device: str
    command: str
    source: str
    context: str = ""  # e.g. "occupancy=present" -- the policy-level context


class BehaviorProfile:
    """Context-conditional categorical profile for one device."""

    def __init__(self, device: str, threshold: float = 0.05, min_training: int = 20) -> None:
        self.device = device
        self.threshold = threshold
        self.min_training = min_training
        self.counts: Counter[tuple[str, str, str]] = Counter()
        self.total = 0

    def observe(self, event: BehaviorEvent) -> None:
        """Train on one benign event."""
        self.counts[(event.command, event.source, event.context)] += 1
        self.total += 1

    def probability(self, event: BehaviorEvent) -> float:
        """Laplace-smoothed conditional probability of the event."""
        vocabulary = max(1, len(self.counts))
        count = self.counts.get((event.command, event.source, event.context), 0)
        return (count + 1) / (self.total + vocabulary)

    def is_anomalous(self, event: BehaviorEvent) -> bool:
        """Too-rare events are anomalies; an untrained profile abstains
        (returns False) rather than flooding alerts during warm-up."""
        if self.total < self.min_training:
            return False
        return self.probability(event) < self.threshold

    def score(self, event: BehaviorEvent) -> float:
        """Anomaly score in [0, 1]: 1 = never seen, 0 = dominant event."""
        return 1.0 - min(1.0, self.probability(event) / max(self.threshold, 1e-9))


@dataclass
class RateProfile:
    """EWMA volumetric profile: flag windows far above the learned mean."""

    device: str
    alpha: float = 0.2
    deviation_factor: float = 4.0
    min_windows: int = 5
    mean: float = 0.0
    windows_seen: int = 0
    alerts: list[tuple[int, float]] = field(default_factory=list)

    def observe_window(self, volume: float) -> bool:
        """Feed one window's volume; returns True when it is anomalous.

        Anomalous windows are *not* absorbed into the mean (otherwise a
        slow-boil attacker retrains the profile upward).
        """
        self.windows_seen += 1
        if self.windows_seen <= self.min_windows:
            self.mean = self.mean + self.alpha * (volume - self.mean)
            return False
        bound = self.deviation_factor * max(self.mean, 1e-9)
        if volume > bound:
            self.alerts.append((self.windows_seen, volume))
            return True
        self.mean = self.mean + self.alpha * (volume - self.mean)
        return False


class ProfileBank:
    """All devices' profiles, with a convenience scoring API."""

    def __init__(self, threshold: float = 0.05, min_training: int = 20) -> None:
        self.threshold = threshold
        self.min_training = min_training
        self.profiles: dict[str, BehaviorProfile] = {}

    def profile(self, device: str) -> BehaviorProfile:
        if device not in self.profiles:
            self.profiles[device] = BehaviorProfile(
                device, threshold=self.threshold, min_training=self.min_training
            )
        return self.profiles[device]

    def observe(self, event: BehaviorEvent) -> None:
        self.profile(event.device).observe(event)

    def is_anomalous(self, event: BehaviorEvent) -> bool:
        return self.profile(event.device).is_anomalous(event)
