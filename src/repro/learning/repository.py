"""The anonymous crowdsourced signature repository.

Section 4.1: "we envision a crowdsourced repository that allows users who
have deployed a specific IoT device SKU to share attack signatures ... The
repository would offer a simple publish-subscribe interface."

Design points, each answering one of the paper's three challenges:

- *Incentives*: contributors get **priority notification** -- their
  subscriptions are served with zero added delay, non-contributors after
  ``free_rider_delay`` simulated seconds.
- *Privacy*: every report passes through the :class:`Anonymizer` before it
  is stored or distributed.
- *Data quality*: distribution is gated by the :class:`ReputationSystem`;
  signatures whose confidence falls below threshold (e.g. after down-votes)
  are withheld and, if already distributed, revoked.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.learning.anonymize import Anonymizer
from repro.learning.reputation import ReputationSystem
from repro.learning.signatures import AttackSignature

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator

SignatureCallback = Callable[[AttackSignature], None]


@dataclass
class Subscription:
    subscriber: str
    sku: str
    callback: SignatureCallback


class CrowdRepository:
    """Publish/subscribe attack-signature sharing, keyed by SKU."""

    def __init__(
        self,
        sim: "Simulator",
        reputation: ReputationSystem | None = None,
        anonymizer: Anonymizer | None = None,
        free_rider_delay: float = 300.0,
        base_delay: float = 1.0,
    ) -> None:
        self.sim = sim
        self.reputation = reputation or ReputationSystem()
        self.anonymizer = anonymizer or Anonymizer()
        self.free_rider_delay = free_rider_delay
        self.base_delay = base_delay
        self.signatures: dict[int, AttackSignature] = {}
        self._by_sku: dict[str, list[int]] = defaultdict(list)
        self._subscriptions: list[Subscription] = []
        self._contributors: set[str] = set()
        self._seen_keys: dict[tuple, int] = {}
        self._revoked: set[int] = set()
        self.published = 0
        self.duplicates = 0
        self.withheld = 0

    # ------------------------------------------------------------------
    # Publish
    # ------------------------------------------------------------------
    def publish(self, signature: AttackSignature, reporter: str) -> int | None:
        """Submit a signature.  Returns its id, or None when deduplicated.

        The reporter's raw identity never leaves this call: the stored and
        distributed copies carry the pseudonym.
        """
        signature.reporter = reporter
        scrubbed = self.anonymizer.scrub(signature)
        scrubbed.reported_at = self.sim.now
        key = scrubbed.key()
        if key in self._seen_keys:
            self.duplicates += 1
            # Duplicate confirmation counts as a validation of the original.
            original = self.signatures[self._seen_keys[key]]
            self.reputation.feedback(original.reporter, validated=True)
            return None
        self._seen_keys[key] = scrubbed.sig_id
        self.signatures[scrubbed.sig_id] = scrubbed
        self._by_sku[scrubbed.sku].append(scrubbed.sig_id)
        self._contributors.add(scrubbed.reporter)
        self.published += 1
        self._distribute(scrubbed)
        return scrubbed.sig_id

    def _distribute(self, signature: AttackSignature) -> None:
        if not self.reputation.accepted(signature.sig_id, signature.reporter):
            self.withheld += 1
            return
        signature.confidence = self.reputation.confidence(
            signature.sig_id, signature.reporter
        )
        for sub in self._subscriptions:
            if sub.sku != signature.sku:
                continue
            delay = self.base_delay
            if sub.subscriber not in self._contributors:
                delay += self.free_rider_delay

            def deliver(s: Subscription = sub) -> None:
                if signature.sig_id not in self._revoked:
                    s.callback(signature)

            self.sim.schedule(delay, deliver)

    # ------------------------------------------------------------------
    # Subscribe
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: str, sku: str, callback: SignatureCallback) -> None:
        """Register for signatures of one SKU; existing accepted signatures
        are replayed immediately (with the same priority rules)."""
        sub = Subscription(subscriber=subscriber, sku=sku, callback=callback)
        self._subscriptions.append(sub)
        for sig_id in self._by_sku.get(sku, ()):
            if sig_id in self._revoked:
                continue
            signature = self.signatures[sig_id]
            if not self.reputation.accepted(sig_id, signature.reporter):
                continue
            delay = self.base_delay
            if subscriber not in self._contributors:
                delay += self.free_rider_delay
            self.sim.schedule(delay, callback, signature)

    # ------------------------------------------------------------------
    # Quality control
    # ------------------------------------------------------------------
    def vote(self, sig_id: int, voter: str, helpful: bool) -> None:
        """A subscriber's verdict; may revoke a now-distrusted signature."""
        signature = self.signatures.get(sig_id)
        if signature is None:
            return
        self.reputation.vote(sig_id, voter, helpful)
        self.reputation.feedback(signature.reporter, validated=helpful)
        if not self.reputation.accepted(sig_id, signature.reporter):
            self._revoked.add(sig_id)

    def is_revoked(self, sig_id: int) -> bool:
        return sig_id in self._revoked

    def reconsider(self, reporter: str) -> int:
        """Re-check acceptance of everything ``reporter`` published.

        Called when out-of-band evidence (e.g. quarantined telemetry --
        see :mod:`repro.learning.evidence`) degrades a contributor's
        reputation after their signatures were already accepted.  Returns
        how many live signatures were revoked.
        """
        revoked = 0
        for sig_id, signature in self.signatures.items():
            if sig_id in self._revoked or signature.reporter != reporter:
                continue
            if not self.reputation.accepted(sig_id, signature.reporter):
                self._revoked.add(sig_id)
                revoked += 1
        return revoked

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def signatures_for(self, sku: str, include_revoked: bool = False) -> list[AttackSignature]:
        return [
            self.signatures[sig_id]
            for sig_id in self._by_sku.get(sku, ())
            if include_revoked or sig_id not in self._revoked
        ]

    def covered_skus(self) -> set[str]:
        """SKUs with at least one live, accepted signature."""
        covered = set()
        for sku, ids in self._by_sku.items():
            for sig_id in ids:
                signature = self.signatures[sig_id]
                if sig_id not in self._revoked and self.reputation.accepted(
                    sig_id, signature.reporter
                ):
                    covered.add(sku)
                    break
        return covered

    def stats(self) -> dict[str, int]:
        return {
            "published": self.published,
            "duplicates": self.duplicates,
            "withheld": self.withheld,
            "revoked": len(self._revoked),
            "skus": len(self._by_sku),
            "subscriptions": len(self._subscriptions),
        }
