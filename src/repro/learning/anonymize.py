"""Privacy scrubbing for shared reports.

Section 4.1's second crowdsourcing challenge: "Sharing information raises
concerns about the potential for accidentally leaking private information."
Before a signature or trace leaves a site, the repository applies:

- **pseudonymization**: reporter identities become salted-hash pseudonyms
  (stable per repository so reputation can still accrue, unlinkable across
  repositories because the salt differs);
- **address scrubbing**: site-local node names in traces are replaced by
  role labels;
- **payload redaction**: values under sensitive keys (credentials, tokens,
  readings) are dropped from published signature matches unless they are
  the vendor-default constants the signature is about.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.learning.signatures import AttackSignature, SignatureMatch

#: Payload keys whose values are user secrets, never to be shared verbatim.
SENSITIVE_KEYS: frozenset[str] = frozenset({"session", "token", "readings", "data"})

#: Vendor-default constants that *are* the attack and may be shared.
SHAREABLE_VALUES: frozenset[str] = frozenset(
    {"admin", "password", "1234", "root", "0000", "derived-from-rsa"}
)


def pseudonym(identity: str, salt: str) -> str:
    """A stable, salted pseudonym for a contributor identity."""
    digest = hashlib.sha256(f"{salt}:{identity}".encode()).hexdigest()
    return f"anon-{digest[:12]}"


@dataclass
class Anonymizer:
    """Scrubs signatures before publication."""

    salt: str = "repository-salt"

    def scrub(self, signature: AttackSignature) -> AttackSignature:
        """Return a publication-safe copy of ``signature``."""
        safe_contains = []
        for key, value in signature.match.payload_contains:
            if key in ("username", "password") and str(value) not in SHAREABLE_VALUES:
                # A user-chosen secret leaked into the match: generalize to
                # a presence test instead of the literal value.
                continue
            if key in SENSITIVE_KEYS:
                continue
            safe_contains.append((key, value))
        dropped = [
            key
            for key, __ in signature.match.payload_contains
            if (key, dict(signature.match.payload_contains)[key])
            not in [(k, v) for k, v in safe_contains]
        ]
        safe_keys = tuple(
            sorted(set(signature.match.payload_keys) | set(dropped))
        )
        scrubbed_match = SignatureMatch(
            protocol=signature.match.protocol,
            dport=signature.match.dport,
            payload_contains=tuple(safe_contains),
            payload_keys=safe_keys,
            min_size=signature.match.min_size,
        )
        return AttackSignature(
            sku=signature.sku,
            flaw_class=signature.flaw_class,
            match=scrubbed_match,
            recommended_posture=signature.recommended_posture,
            reporter=pseudonym(signature.reporter, self.salt),
            reported_at=signature.reported_at,
            confidence=signature.confidence,
            notes=signature.notes,
        )

    def scrub_trace(self, trace: list[str], site_nodes: set[str]) -> list[str]:
        """Replace site-local node names in a packet trace with roles."""
        return [
            "site-node" if hop in site_nodes else hop
            for hop in trace
        ]


def leaks_identity(signature: AttackSignature, identities: set[str]) -> bool:
    """Audit helper: does a published signature still carry a raw identity
    or secret?  Used by tests to prove the scrubber's invariant."""
    if signature.reporter in identities:
        return True
    for key, value in signature.match.payload_contains:
        if key in SENSITIVE_KEYS:
            return True
        if key in ("username", "password") and str(value) not in SHAREABLE_VALUES:
            return True
    return False
