"""The common attack-signature format.

Section 4.1: "users could publish traces or signatures, expressed in a
common format, which other users could subscribe to."  A signature names
the SKU it applies to, a packet-level match, and the posture that
neutralizes the attack; µmbox IDSes evaluate the match, the controller acts
on the posture hint.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.netsim.packet import Packet

_SIG_IDS = itertools.count(1)


@dataclass(frozen=True)
class SignatureMatch:
    """A packet predicate: header constraints plus payload content tests.

    ``payload_contains`` requires exact key/value matches; ``payload_keys``
    only requires the keys to be present (catching e.g. any login attempt).
    ``None`` header fields are wildcards.
    """

    protocol: str | None = None
    dport: int | None = None
    payload_contains: tuple[tuple[str, Any], ...] = ()
    payload_keys: tuple[str, ...] = ()
    min_size: int | None = None

    @classmethod
    def make(
        cls,
        protocol: str | None = None,
        dport: int | None = None,
        payload_contains: Mapping[str, Any] | None = None,
        payload_keys: tuple[str, ...] = (),
        min_size: int | None = None,
    ) -> "SignatureMatch":
        return cls(
            protocol=protocol,
            dport=dport,
            payload_contains=tuple(sorted((payload_contains or {}).items())),
            payload_keys=tuple(payload_keys),
            min_size=min_size,
        )

    def matches(self, packet: Packet) -> bool:
        if self.protocol is not None and packet.protocol != self.protocol:
            return False
        if self.dport is not None and packet.dport != self.dport:
            return False
        if self.min_size is not None and packet.size < self.min_size:
            return False
        for key, value in self.payload_contains:
            if packet.payload.get(key) != value:
                return False
        for key in self.payload_keys:
            if key not in packet.payload:
                return False
        return True


@dataclass
class AttackSignature:
    """One shareable unit of attack knowledge.

    Attributes
    ----------
    sku:
        The device SKU the signature was observed against -- the sharing
        granularity ("Google Nest version XYZ rather than 'thermostat'").
    flaw_class:
        The Table 1 taxonomy bucket.
    match:
        The packet predicate an IDS µmbox should alert on.
    recommended_posture:
        Name of the posture that mitigates the attack (keys into
        :data:`repro.core.orchestrator.POSTURE_RECIPES`).
    reporter:
        Contributor pseudonym (anonymized before distribution).
    reported_at:
        Simulated publication time.
    confidence:
        Repository-assigned trust in [0, 1], driven by reputation/votes.
    """

    sku: str
    flaw_class: str
    match: SignatureMatch
    recommended_posture: str = "quarantine"
    reporter: str = "anonymous"
    reported_at: float = 0.0
    confidence: float = 0.5
    sig_id: int = field(default_factory=lambda: next(_SIG_IDS))
    notes: str = ""

    def key(self) -> tuple[str, str, SignatureMatch]:
        """Identity for deduplication: same SKU, flaw and match."""
        return (self.sku, self.flaw_class, self.match)

    def to_dict(self) -> dict[str, Any]:
        """The interchange format published to the repository."""
        return {
            "sku": self.sku,
            "flaw_class": self.flaw_class,
            "match": {
                "protocol": self.match.protocol,
                "dport": self.match.dport,
                "payload_contains": dict(self.match.payload_contains),
                "payload_keys": list(self.match.payload_keys),
                "min_size": self.match.min_size,
            },
            "recommended_posture": self.recommended_posture,
            "reporter": self.reporter,
            "reported_at": self.reported_at,
            "confidence": self.confidence,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AttackSignature":
        match_data = data.get("match", {})
        return cls(
            sku=str(data["sku"]),
            flaw_class=str(data.get("flaw_class", "unknown")),
            match=SignatureMatch.make(
                protocol=match_data.get("protocol"),
                dport=match_data.get("dport"),
                payload_contains=match_data.get("payload_contains"),
                payload_keys=tuple(match_data.get("payload_keys", ())),
                min_size=match_data.get("min_size"),
            ),
            recommended_posture=str(data.get("recommended_posture", "quarantine")),
            reporter=str(data.get("reporter", "anonymous")),
            reported_at=float(data.get("reported_at", 0.0)),
            confidence=float(data.get("confidence", 0.5)),
            notes=str(data.get("notes", "")),
        )


# Canned signatures for the Table 1 flaw classes, used to bootstrap
# experiments and as the "known attack" corpus.
def default_credential_signature(sku: str) -> AttackSignature:
    return AttackSignature(
        sku=sku,
        flaw_class="exposed-credentials",
        match=SignatureMatch.make(
            protocol="http",
            dport=80,
            payload_contains={"action": "login", "username": "admin", "password": "admin"},
        ),
        recommended_posture="password_proxy",
        notes="vendor default credential attempt",
    )


def backdoor_signature(sku: str, backdoor_port: int) -> AttackSignature:
    return AttackSignature(
        sku=sku,
        flaw_class="backdoor",
        match=SignatureMatch.make(dport=backdoor_port, payload_keys=("cmd",)),
        recommended_posture="stateful_firewall",
        notes="vendor debug backdoor command",
    )


def dns_amplification_signature(sku: str) -> AttackSignature:
    return AttackSignature(
        sku=sku,
        flaw_class="open-dns-resolver",
        match=SignatureMatch.make(protocol="dns", dport=53),
        recommended_posture="dns_guard",
        notes="open resolver abused for reflection",
    )
