"""Mining signatures from shared attack traces.

Section 4.1: "users could publish **traces or signatures**, expressed in a
common format".  Not every victim site can write a Snort rule; most can
export the packets their logger captured around an incident.  The trace
miner turns a labelled packet set into an :class:`AttackSignature`:

1. find the header fields (protocol, dport) shared by *every* attack
   packet;
2. find the payload key/value pairs shared by every attack packet;
3. drop any candidate constraint that also matches benign packets from
   the same capture (precision guard);
4. generalize values that look site-specific (sessions, readings) to
   presence-only tests -- the same rules the anonymizer applies.

The result is deliberately conservative: a mined signature matches every
attack packet in the trace and none of the benign ones, or mining fails
loudly rather than shipping an over-broad rule (the repository's
data-quality problem starts with over-broad rules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.learning.anonymize import SENSITIVE_KEYS
from repro.learning.signatures import AttackSignature, SignatureMatch
from repro.netsim.packet import Packet


class MiningError(ValueError):
    """No signature separates the attack packets from the benign ones."""


@dataclass(frozen=True)
class LabelledTrace:
    """A capture around an incident: attack packets plus benign context."""

    attack: tuple[Packet, ...]
    benign: tuple[Packet, ...] = ()

    @classmethod
    def make(
        cls, attack: Iterable[Packet], benign: Iterable[Packet] = ()
    ) -> "LabelledTrace":
        attack = tuple(attack)
        if not attack:
            raise ValueError("a trace needs at least one attack packet")
        return cls(attack=attack, benign=tuple(benign))


def _common_value(values: Sequence[Any]) -> Any | None:
    first = values[0]
    return first if all(v == first for v in values[1:]) else None


def mine_signature(
    trace: LabelledTrace,
    sku: str,
    flaw_class: str = "unknown",
    recommended_posture: str = "stateful_firewall",
) -> AttackSignature:
    """Derive the most specific signature consistent with the trace."""
    attack = trace.attack

    protocol = _common_value([p.protocol for p in attack])
    dport = _common_value([p.dport for p in attack])

    # payload constraints shared by every attack packet
    shared_keys = set(attack[0].payload)
    for packet in attack[1:]:
        shared_keys &= set(packet.payload)
    payload_contains: dict[str, Any] = {}
    payload_keys: list[str] = []
    for key in sorted(shared_keys):
        value = _common_value([p.payload[key] for p in attack])
        if key in SENSITIVE_KEYS:
            payload_keys.append(key)  # presence only: never ship the value
        elif value is not None and not isinstance(value, (dict, list)):
            payload_contains[key] = value
        else:
            payload_keys.append(key)

    candidate = SignatureMatch.make(
        protocol=protocol,
        dport=dport,
        payload_contains=payload_contains,
        payload_keys=tuple(payload_keys),
    )

    # precision guard: relax constraints that don't separate, but refuse to
    # ship a match that still catches benign traffic
    if any(candidate.matches(p) for p in trace.benign):
        # try dropping value constraints one at a time (most generic first)
        for drop in sorted(payload_contains):
            relaxed_contains = {
                k: v for k, v in payload_contains.items() if k != drop
            }
            relaxed = SignatureMatch.make(
                protocol=protocol,
                dport=dport,
                payload_contains=relaxed_contains,
                payload_keys=tuple(sorted(set(payload_keys) | {drop})),
            )
            if not any(relaxed.matches(p) for p in trace.benign) and all(
                relaxed.matches(p) for p in trace.attack
            ):
                candidate = relaxed
                break
        else:
            raise MiningError(
                "no mined signature separates the attack packets from the "
                "benign capture; share the raw (anonymized) trace instead"
            )

    if not all(candidate.matches(p) for p in attack):
        raise MiningError("internal: mined signature missed an attack packet")

    return AttackSignature(
        sku=sku,
        flaw_class=flaw_class,
        match=candidate,
        recommended_posture=recommended_posture,
        notes=f"mined from a {len(attack)}-packet attack trace",
    )


def mine_and_publish(
    repository,
    trace: LabelledTrace,
    sku: str,
    reporter: str,
    flaw_class: str = "unknown",
    recommended_posture: str = "stateful_firewall",
) -> int | None:
    """Convenience: mine a signature and publish it in one step."""
    signature = mine_signature(
        trace, sku, flaw_class=flaw_class, recommended_posture=recommended_posture
    )
    return repository.publish(signature, reporter=reporter)
