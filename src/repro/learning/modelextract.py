"""Empirical model extraction from an instrumented testbed.

Section 4.2: "One potential approach to build these abstract model of
devices and their effect on the environment is to observe deeply
instrumented (controlled) IoT testbeds ... actually actuating devices into
different states and observing their effects on the environment ...
Automatically extracting these model specifications is an interesting
direction for future work."

We implement that future work against the *concrete* simulator: the
extractor drives a real :class:`IoTDevice` through its commands inside a
real :class:`Environment`, watches which variables move, and emits
qualitative response facts.  Tests then check the extracted facts agree
with the hand-written abstract world -- closing the loop between the two
model layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.learning.abstract_env import ResponseRule

if TYPE_CHECKING:  # pragma: no cover
    from repro.devices.base import IoTDevice
    from repro.environment.engine import Environment


@dataclass(frozen=True)
class ObservedEffect:
    """Actuating ``device`` into ``state`` moved ``variable`` to ``level``."""

    device: str
    state: str
    variable: str
    level: str


@dataclass
class ExtractionReport:
    """Everything one testbed session learned."""

    device: str
    kind: str
    states_probed: list[str] = field(default_factory=list)
    effects: list[ObservedEffect] = field(default_factory=list)

    def effects_for_state(self, state: str) -> list[ObservedEffect]:
        return [e for e in self.effects if e.state == state]

    def touched_variables(self) -> set[str]:
        return {e.variable for e in self.effects}

    def as_response_rules(self) -> list[ResponseRule]:
        """Crude rule synthesis: each observed effect becomes a response
        rule keyed on a synthetic per-device-state input.  Useful for
        merging many reports into a shared world model."""
        return [
            ResponseRule(
                input_key=f"{self.device}:{effect.state}",
                variable=effect.variable,
                level=effect.level,
            )
            for effect in self.effects
        ]


class ModelExtractor:
    """Drives one device through its states and records the fallout.

    The probe works on a *dedicated* environment: between probes it resets
    every continuous variable to its initial value so effects do not bleed
    across states.  ``settle_time`` is how long physics runs (simulated)
    after each actuation before levels are read.
    """

    def __init__(
        self,
        env: "Environment",
        settle_time: float = 600.0,
    ) -> None:
        self.env = env
        self.settle_time = settle_time

    def _baseline(self) -> dict[str, str]:
        self._let_settle()
        return self.env.snapshot()

    def _let_settle(self) -> None:
        ticks = max(1, int(self.settle_time / self.env.tick))
        for __ in range(ticks):
            self.env.step_once()

    def extract(self, device: "IoTDevice") -> ExtractionReport:
        """Probe every reachable state of ``device``."""
        report = ExtractionReport(device=device.name, kind=device.kind)
        model = device.model
        initial_state = device.state
        baseline = self._baseline()

        for state in sorted(model.reachable_states()):
            # Drive the device into `state` by direct actuation (this is a
            # *controlled testbed*: we own the device).
            device.state = state
            device._apply_effects()
            self._let_settle()
            report.states_probed.append(state)
            after = self.env.snapshot()
            for variable, level in after.items():
                if baseline.get(variable) != level:
                    report.effects.append(
                        ObservedEffect(
                            device=device.name,
                            state=state,
                            variable=variable,
                            level=level,
                        )
                    )
            # Reset for the next probe.
            device.state = initial_state
            device._apply_effects()
            self._let_settle()
        return report


def validate_against_model(report: ExtractionReport, device: "IoTDevice") -> list[str]:
    """Cross-check extracted effects against the declared abstract model.

    Returns human-readable discrepancies (empty = the device behaves as its
    datasheet claims -- or at least as far as this testbed can see).
    """
    problems = []
    declared_inputs = device.model.affected_inputs()
    declared_bindings = {var for __, var, __lvl in device.model.state_bindings}
    for effect in report.effects:
        state_inputs = device.model.effect_inputs(effect.state)
        held = dict(device.model.binding_for(effect.state))
        if effect.variable in held:
            if held[effect.variable] != effect.level:
                problems.append(
                    f"{effect.device}.{effect.state}: binding says "
                    f"{effect.variable}={held[effect.variable]}, observed {effect.level}"
                )
        elif not state_inputs and not declared_bindings & {effect.variable}:
            if not declared_inputs:
                problems.append(
                    f"{effect.device}.{effect.state}: moved {effect.variable} "
                    f"to {effect.level} but the model declares no effects"
                )
    return problems
