"""Learning a device's FSM by systematic actuation.

Section 4.2 closes with: "Automatically extracting these model
specifications is an interesting direction for future work."  The
:class:`FsmLearner` implements it for the controlled-testbed setting the
paper describes: it owns the device, probes every command from every
reachable state (BFS), observes the resulting state, and -- with a
:class:`ModelExtractor` environment attached -- observes the physical
effects too.  The output is a fresh :class:`DeviceModel` built purely
from observation.

``tests/test_fsmlearner.py`` closes the loop: for every device class in
the library, the learned model is behaviourally equivalent (same
transition function over the learned vocabulary, same effects footprint)
to the hand-written one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.devices.model import DeviceModel, EnvEffect

if TYPE_CHECKING:  # pragma: no cover
    from repro.devices.base import IoTDevice
    from repro.environment.engine import Environment


@dataclass
class LearningReport:
    """What the probe session observed."""

    device: str
    kind: str
    states: set[str] = field(default_factory=set)
    transitions: dict[tuple[str, str], str] = field(default_factory=dict)
    effects: dict[str, dict[str, float]] = field(default_factory=dict)
    probes: int = 0


class FsmLearner:
    """BFS probing of a device's command-driven state machine.

    The learner needs a *command vocabulary* to try.  In a real testbed
    this comes from the vendor app's UI or protocol capture; here callers
    usually pass the class vocabulary (``device.model.commands``) or a
    superset -- the learner makes no other use of the declared model.
    """

    def __init__(self, vocabulary: Iterable[str]) -> None:
        self.vocabulary = tuple(dict.fromkeys(vocabulary))
        if not self.vocabulary:
            raise ValueError("need a non-empty command vocabulary")

    def learn(self, device: "IoTDevice", env: "Environment | None" = None) -> LearningReport:
        """Probe the device exhaustively; restores its initial state."""
        report = LearningReport(device=device.name, kind=device.kind)
        initial = device.state
        frontier = [initial]
        report.states.add(initial)

        def set_state(state: str) -> None:
            # Controlled testbed: we own the device and can reset it.
            device.state = state
            device._apply_effects()

        while frontier:
            state = frontier.pop()
            for command in self.vocabulary:
                set_state(state)
                device.apply_command(command, src="learner", via="local")
                report.probes += 1
                after = device.state
                if after != state:
                    report.transitions[(state, command)] = after
                if after not in report.states:
                    report.states.add(after)
                    frontier.append(after)

        # observe physical effects per state (via declared actuation inputs)
        if env is not None:
            for state in sorted(report.states):
                set_state(state)
                contributions = {
                    key: value
                    for key, value in (
                        (k, env._input_contributions.get(k, {}).get(device.name, 0.0))
                        for k in env.inputs
                    )
                    if value
                }
                if contributions:
                    report.effects[state] = contributions

        set_state(initial)
        return report

    def to_model(self, report: LearningReport, initial: str) -> DeviceModel:
        """Materialize the observations as a :class:`DeviceModel`.

        Triggers and sensors are not observable through actuation alone
        (they need environment stimulation -- see ``ModelExtractor``), so
        the learned model covers the command-driven core.
        """
        effects = tuple(
            EnvEffect.make(state, **inputs)
            for state, inputs in sorted(report.effects.items())
        )
        return DeviceModel(
            kind=f"learned-{report.kind}",
            states=tuple(sorted(report.states)),
            initial=initial,
            transitions=dict(report.transitions),
            effects=effects,
        )


def behaviourally_equivalent(
    learned: DeviceModel, declared: DeviceModel, vocabulary: Iterable[str]
) -> bool:
    """Same reachable states and same transition function over the
    vocabulary, starting from the declared initial state."""
    if learned.reachable_states(learned.initial) != declared.reachable_states(
        declared.initial
    ):
        return False
    for state in declared.reachable_states(declared.initial):
        for command in vocabulary:
            if learned.next_state(state, command) != declared.next_state(
                state, command
            ):
                return False
    return True
