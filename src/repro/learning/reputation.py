"""Reputation and voting for crowd-data quality.

Section 4.1's third challenge: "With any crowdsourcing solution, there is
the risk of noisy data (accidental or adversarial) which may inadvertently
lead to a denial of service ... use reputation or voting mechanisms to deal
with incorrect reporting."

We use beta reputation: each contributor carries ``(alpha, beta)`` counts of
validated / invalidated reports; their score is ``alpha / (alpha + beta)``.
A signature's acceptance weight combines its reporter's score with votes
from other subscribers (each weighted by the *voter's* score), so a sybil
swarm of fresh identities has little pull while long-standing accurate
contributors converge to weight ~1.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ContributorRecord:
    """Beta-reputation state for one (pseudonymous) contributor."""

    alpha: float = 1.0  # prior: one virtual validated report
    beta: float = 1.0   # prior: one virtual invalidated report

    @property
    def score(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    def record_validated(self, weight: float = 1.0) -> None:
        self.alpha += weight

    def record_invalidated(self, weight: float = 1.0) -> None:
        self.beta += weight


@dataclass
class VoteTally:
    """Votes on one signature, each weighted by the voter's reputation."""

    up_weight: float = 0.0
    down_weight: float = 0.0
    voters: set[str] = field(default_factory=set)

    @property
    def net(self) -> float:
        return self.up_weight - self.down_weight


class ReputationSystem:
    """Scores contributors and decides which signatures to distribute."""

    def __init__(
        self,
        accept_threshold: float = 0.4,
        vote_weight: float = 0.15,
    ) -> None:
        # The default threshold sits below the fresh-contributor prior
        # (0.5): new reporters are trusted-but-verified, while anyone whose
        # record degrades past 0.4 is cut off.
        self.accept_threshold = accept_threshold
        self.vote_weight = vote_weight
        self.contributors: dict[str, ContributorRecord] = {}
        self.tallies: dict[int, VoteTally] = {}

    def _record(self, contributor: str) -> ContributorRecord:
        return self.contributors.setdefault(contributor, ContributorRecord())

    def score_of(self, contributor: str) -> float:
        return self._record(contributor).score

    # ------------------------------------------------------------------
    # Voting
    # ------------------------------------------------------------------
    def vote(self, sig_id: int, voter: str, helpful: bool) -> None:
        """One subscriber's verdict on a distributed signature.

        Re-votes by the same voter are ignored (first vote binds).
        """
        tally = self.tallies.setdefault(sig_id, VoteTally())
        if voter in tally.voters:
            return
        tally.voters.add(voter)
        weight = self.score_of(voter)
        if helpful:
            tally.up_weight += weight
        else:
            tally.down_weight += weight

    def confidence(self, sig_id: int, reporter: str) -> float:
        """Combined trust in [0, 1]: reporter score shifted by votes."""
        base = self.score_of(reporter)
        tally = self.tallies.get(sig_id)
        if tally is None:
            return base
        shifted = base + self.vote_weight * tally.net
        return max(0.0, min(1.0, shifted))

    def accepted(self, sig_id: int, reporter: str) -> bool:
        return self.confidence(sig_id, reporter) >= self.accept_threshold

    # ------------------------------------------------------------------
    # Ground-truth feedback (a site confirmed/refuted the signature)
    # ------------------------------------------------------------------
    def feedback(self, reporter: str, validated: bool) -> None:
        record = self._record(reporter)
        if validated:
            record.record_validated()
        else:
            record.record_invalidated()

    def top_contributors(self, n: int = 10) -> list[tuple[str, float]]:
        ranked = sorted(
            self.contributors.items(), key=lambda kv: kv[1].score, reverse=True
        )
        return [(name, record.score) for name, record in ranked[:n]]
