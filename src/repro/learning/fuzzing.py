"""Model-based fuzzing of the joint device x environment space.

Section 4.2: "we can think of the states of each IoT device model and the
environment as potential input variables for fuzzing.  Then, we run
multiple fuzz tests to explore the space of possible behaviors.  We expect
that device interactions will likely be sparse ... Thus, fuzzing can give
us reasonable coverage over the space of acceptable behaviors."

The discovery target is the set of **interaction edges**: ``(actor device,
command) -> (affected device)`` pairs where the affected device's state
changes *without receiving any message* -- i.e. purely through the physical
environment (effects -> variables -> triggers).  Bench E4 compares:

- :class:`ModelFuzzer` -- random action exploration over the abstract
  world;
- :func:`exhaustive_edges` -- BFS ground truth (feasible because abstract
  spaces are small -- that is the point of abstraction);
- :class:`PassiveObserver` -- the strawman: watch only benign daily-use
  action sequences, which exercises a fraction of the space.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.learning.abstract_env import AbstractWorld, JointState


@dataclass(frozen=True)
class InteractionEdge:
    """Actor's command changed the victim's state with no direct message."""

    actor: str
    command: str
    victim: str

    def __str__(self) -> str:
        return f"{self.actor}.{self.command} ~~> {self.victim}"


@dataclass(frozen=True)
class EnvironmentEdge:
    """Actor's command moved an environment variable to a level."""

    actor: str
    command: str
    variable: str
    level: str

    def __str__(self) -> str:
        return f"{self.actor}.{self.command} ~~> env:{self.variable}={self.level}"


def _edges_of_transition(
    before: JointState, after: JointState, action: tuple[str, str, str]
) -> tuple[set[InteractionEdge], set[EnvironmentEdge]]:
    kind, subject, value = action
    if kind != "cmd":
        return set(), set()
    interactions: set[InteractionEdge] = set()
    env_edges: set[EnvironmentEdge] = set()
    before_devices, after_devices = before.devices(), after.devices()
    for name, state in after_devices.items():
        if name != subject and before_devices.get(name) != state:
            interactions.add(InteractionEdge(subject, value, name))
    before_env, after_env = before.env(), after.env()
    for variable, level in after_env.items():
        if before_env.get(variable) != level:
            env_edges.add(EnvironmentEdge(subject, value, variable, level))
    return interactions, env_edges


@dataclass
class FuzzReport:
    """What one exploration run discovered."""

    steps: int = 0
    states_visited: int = 0
    interaction_edges: set[InteractionEdge] = field(default_factory=set)
    environment_edges: set[EnvironmentEdge] = field(default_factory=set)
    discovery_curve: list[tuple[int, int]] = field(default_factory=list)  # (step, edges)

    def coverage_against(self, truth: set[InteractionEdge]) -> float:
        if not truth:
            return 1.0
        return len(self.interaction_edges & truth) / len(truth)


class ModelFuzzer:
    """Random-action fuzzing with restarts (a "monkey" over the models)."""

    def __init__(
        self,
        world: AbstractWorld,
        rng: random.Random,
        restart_every: int = 50,
    ) -> None:
        if restart_every <= 0:
            raise ValueError("restart_every must be positive")
        self.world = world
        self.rng = rng
        self.restart_every = restart_every

    def run(self, steps: int) -> FuzzReport:
        report = FuzzReport()
        actions = self.world.actions()
        if not actions:
            return report
        visited: set[JointState] = set()
        state = self.world.initial_state()
        visited.add(state)
        for step in range(steps):
            if step and step % self.restart_every == 0:
                state = self.world.initial_state()
            action = actions[self.rng.randrange(len(actions))]
            nxt = self.world.step(state, action)
            interactions, env_edges = _edges_of_transition(state, nxt, action)
            before_edges = len(report.interaction_edges)
            report.interaction_edges |= interactions
            report.environment_edges |= env_edges
            if len(report.interaction_edges) != before_edges:
                report.discovery_curve.append(
                    (step + 1, len(report.interaction_edges))
                )
            visited.add(nxt)
            state = nxt
        report.steps = steps
        report.states_visited = len(visited)
        return report


class PassiveObserver:
    """The no-fuzzing strawman: observe scripted benign usage only.

    ``benign_actions`` is the daily-life action vocabulary (e.g. lights and
    thermostat, but nobody test-fires the smoke alarm or props the window).
    Coverage is limited to edges reachable through that vocabulary -- the
    gap versus the fuzzer is E4's headline number.
    """

    def __init__(
        self,
        world: AbstractWorld,
        benign_actions: Iterable[tuple[str, str, str]],
        rng: random.Random,
    ) -> None:
        self.world = world
        self.benign_actions = [a for a in benign_actions if a in set(world.actions())]
        self.rng = rng

    def run(self, steps: int) -> FuzzReport:
        report = FuzzReport()
        if not self.benign_actions:
            return report
        visited: set[JointState] = set()
        state = self.world.initial_state()
        visited.add(state)
        for step in range(steps):
            action = self.benign_actions[self.rng.randrange(len(self.benign_actions))]
            nxt = self.world.step(state, action)
            interactions, env_edges = _edges_of_transition(state, nxt, action)
            report.interaction_edges |= interactions
            report.environment_edges |= env_edges
            visited.add(nxt)
            state = nxt
        report.steps = steps
        report.states_visited = len(visited)
        return report


def exhaustive_edges(
    world: AbstractWorld, max_states: int = 100_000
) -> tuple[set[InteractionEdge], set[EnvironmentEdge], int]:
    """Ground truth by BFS over the full joint space.

    Returns ``(interaction_edges, environment_edges, states_explored)``.
    Raises when the space exceeds ``max_states`` -- at which point the
    right answer is a better abstraction, not a bigger budget.
    """
    interactions: set[InteractionEdge] = set()
    env_edges: set[EnvironmentEdge] = set()
    actions = world.actions()
    start = world.initial_state()
    frontier = [start]
    seen = {start}
    while frontier:
        state = frontier.pop()
        for action in actions:
            nxt = world.step(state, action)
            ia, ee = _edges_of_transition(state, nxt, action)
            interactions |= ia
            env_edges |= ee
            if nxt not in seen:
                if len(seen) >= max_states:
                    raise RuntimeError(
                        f"joint space exceeds {max_states} states; "
                        "abstract further before enumerating"
                    )
                seen.add(nxt)
                frontier.append(nxt)
    return interactions, env_edges, len(seen)


def interaction_sparsity(
    devices: Mapping[str, object], truth: set[InteractionEdge]
) -> float:
    """Fraction of possible (actor, victim) device pairs actually coupled.

    The paper *expects* "device interactions will likely be sparse"; this
    is the measured check (bench E4 reports it).
    """
    n = len(devices)
    possible = n * (n - 1)
    if possible == 0:
        return 0.0
    coupled = {(e.actor, e.victim) for e in truth}
    return len(coupled) / possible
