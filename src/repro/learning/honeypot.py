"""The honeypot baseline (what the paper says cannot scale).

Section 4: "learning signatures using simple honeypot-like mechanisms will
not scale with the diversity of devices and deployments -- we would need
several thousand honeypots to ensure coverage for every specific device
SKU".

The model: an operator runs ``n`` honeypots, each emulating exactly one
SKU.  An attack campaign against a SKU is *observed* (and a signature
learned) only if some honeypot emulates that SKU and the campaign's attack
sweep happens to hit the honeypot, which occurs with probability
proportional to the honeypot's share of that SKU's population.  Bench E3
races this against the crowdsourced repository, where every production
deployment is a sensor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class HoneypotFarm:
    """``n`` single-SKU honeypots with a deterministic learning model."""

    skus: tuple[str, ...]
    detection_delay: float = 3600.0  # analysis time before a signature ships
    hit_probability: float = 1.0     # P(campaign touches the honeypot | SKU match)
    learned: dict[str, float] = field(default_factory=dict)  # sku -> learn time

    @classmethod
    def covering_most_popular(
        cls,
        population: dict[str, int],
        n_honeypots: int,
        **kwargs: float,
    ) -> "HoneypotFarm":
        """The rational operator: emulate the n most-deployed SKUs."""
        ranked = sorted(population.items(), key=lambda kv: (-kv[1], kv[0]))
        return cls(skus=tuple(sku for sku, __ in ranked[:n_honeypots]), **kwargs)  # type: ignore[arg-type]

    def observe_campaign(self, sku: str, at: float, rng: random.Random) -> bool:
        """An attack campaign swept ``sku`` at time ``at``.  Returns True if
        the farm will (eventually) learn a signature from it."""
        if sku in self.learned:
            return True
        if sku not in self.skus:
            return False
        if rng.random() > self.hit_probability:
            return False
        self.learned[sku] = at + self.detection_delay
        return True

    def covered_skus(self, now: float) -> set[str]:
        """SKUs whose signature has shipped by ``now``."""
        return {sku for sku, ready in self.learned.items() if ready <= now}

    def coverage(self, all_skus: Iterable[str], now: float) -> float:
        universe = set(all_skus)
        if not universe:
            return 1.0
        return len(self.covered_skus(now) & universe) / len(universe)
