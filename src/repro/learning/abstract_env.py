"""The qualitative (abstract) environment model.

Section 4.2 proposes reasoning over "abstract models of ... devices that
capture key input-output behaviors and interactions with environment
variables".  Device classes already carry their half of that contract
(:class:`repro.devices.model.DeviceModel`); this module supplies the other
half -- a *qualitative* physics: which actuation inputs drive which
variables to which levels, with all the continuous dynamics abstracted to
"eventually settles at".

The abstraction is deliberately coarse (sound for discovery, not for
timing): the fuzzer and attack-graph builder only need to know that
``heat_watts > 0`` *can* drive ``temperature`` to ``high``, not when.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.devices.model import DeviceModel


@dataclass(frozen=True)
class ResponseRule:
    """``sum(input_key) > threshold  ==>  variable settles at level``."""

    input_key: str
    variable: str
    level: str
    threshold: float = 0.0


@dataclass(frozen=True)
class AbstractEnvironment:
    """Variables, their baselines, response rules, and exogenous variables.

    ``exogenous`` variables (occupancy, outside weather) are inputs to the
    system rather than consequences of it; the fuzzer flips them freely.
    """

    variables: tuple[tuple[str, tuple[str, ...]], ...]
    baseline: tuple[tuple[str, str], ...]
    rules: tuple[ResponseRule, ...] = ()
    exogenous: tuple[str, ...] = ()

    @classmethod
    def make(
        cls,
        variables: Mapping[str, tuple[str, ...]],
        baseline: Mapping[str, str],
        rules: Iterable[ResponseRule] = (),
        exogenous: Iterable[str] = (),
    ) -> "AbstractEnvironment":
        for name, level in baseline.items():
            if level not in variables[name]:
                raise ValueError(f"baseline {name}={level!r} not in domain")
        return cls(
            variables=tuple(sorted(variables.items())),
            baseline=tuple(sorted(baseline.items())),
            rules=tuple(rules),
            exogenous=tuple(sorted(exogenous)),
        )

    def variable_names(self) -> tuple[str, ...]:
        return tuple(name for name, __ in self.variables)

    def levels_of(self, name: str) -> tuple[str, ...]:
        for var, levels in self.variables:
            if var == name:
                return levels
        raise KeyError(name)

    def settle(
        self,
        inputs: Mapping[str, float],
        held: Mapping[str, str],
        exogenous_levels: Mapping[str, str] | None = None,
    ) -> dict[str, str]:
        """The steady-state level of every variable.

        Precedence (highest first): device *holds* (state bindings), then
        exogenous settings, then active response rules (later rules win
        among simultaneously-active ones), then baselines.
        """
        levels = dict(self.baseline)
        for rule in self.rules:
            if inputs.get(rule.input_key, 0.0) > rule.threshold:
                levels[rule.variable] = rule.level
        if exogenous_levels:
            levels.update(
                {k: v for k, v in exogenous_levels.items() if k in dict(self.variables)}
            )
        levels.update({k: v for k, v in held.items() if k in dict(self.variables)})
        return levels


def default_world() -> AbstractEnvironment:
    """The abstract twin of :mod:`repro.environment.physics`' defaults."""
    return AbstractEnvironment.make(
        variables={
            "temperature": ("low", "normal", "high"),
            "smoke": ("clear", "detected"),
            "illuminance": ("dark", "bright"),
            "window": ("closed", "open"),
            "door": ("locked", "unlocked"),
            "occupancy": ("absent", "present"),
        },
        baseline={
            "temperature": "normal",
            "smoke": "clear",
            "illuminance": "dark",
            "window": "closed",
            "door": "locked",
            "occupancy": "absent",
        },
        rules=(
            ResponseRule("heat_watts", "temperature", "high"),
            ResponseRule("cool_watts", "temperature", "low"),
            ResponseRule("hazard", "smoke", "detected"),
            ResponseRule("lamp_lux", "illuminance", "bright"),
            ResponseRule("ambient_lux", "illuminance", "bright"),
        ),
        exogenous=("occupancy",),
    )


@dataclass(frozen=True)
class JointState:
    """One abstract state of the whole deployment: device states plus
    environment levels.  Hashable for visited-set bookkeeping."""

    device_states: tuple[tuple[str, str], ...]
    env_levels: tuple[tuple[str, str], ...]

    @classmethod
    def make(
        cls, device_states: Mapping[str, str], env_levels: Mapping[str, str]
    ) -> "JointState":
        return cls(
            tuple(sorted(device_states.items())),
            tuple(sorted(env_levels.items())),
        )

    def devices(self) -> dict[str, str]:
        return dict(self.device_states)

    def env(self) -> dict[str, str]:
        return dict(self.env_levels)


class AbstractWorld:
    """The joint transition system over devices + abstract environment.

    This is the object section 4.2's fuzzer explores: states are
    :class:`JointState`, actions are device commands or exogenous flips,
    and the step function closes over trigger cascades to a fixed point.
    """

    MAX_CASCADE = 20  # trigger-cascade fixpoint guard

    def __init__(
        self,
        devices: Mapping[str, DeviceModel],
        environment: AbstractEnvironment | None = None,
    ) -> None:
        self.devices = dict(devices)
        self.environment = environment or default_world()

    # ------------------------------------------------------------------
    def initial_state(self, exogenous: Mapping[str, str] | None = None) -> JointState:
        device_states = {name: model.initial for name, model in self.devices.items()}
        return self._close(device_states, dict(exogenous or {}))

    def actions(self) -> list[tuple[str, str, str]]:
        """All actions: ``("cmd", device, command)`` and
        ``("env", variable, level)`` for exogenous variables."""
        acts: list[tuple[str, str, str]] = []
        for name, model in sorted(self.devices.items()):
            for command in model.commands:
                acts.append(("cmd", name, command))
        for variable in self.environment.exogenous:
            for level in self.environment.levels_of(variable):
                acts.append(("env", variable, level))
        return acts

    def step(
        self, state: JointState, action: tuple[str, str, str]
    ) -> JointState:
        """Apply one action and settle the world (triggers cascade)."""
        device_states = state.devices()
        exogenous = {
            k: v for k, v in state.env().items() if k in self.environment.exogenous
        }
        kind, subject, value = action
        if kind == "cmd":
            model = self.devices[subject]
            device_states[subject] = model.next_state(device_states[subject], value)
        elif kind == "env":
            if subject not in self.environment.exogenous:
                raise ValueError(f"{subject} is not exogenous")
            exogenous[subject] = value
        else:
            raise ValueError(f"unknown action kind {kind!r}")
        return self._close(device_states, exogenous)

    def _close(
        self, device_states: dict[str, str], exogenous: dict[str, str]
    ) -> JointState:
        """Settle env then fire triggers repeatedly until nothing changes."""
        for __ in range(self.MAX_CASCADE):
            env_levels = self._settle(device_states, exogenous)
            changed = False
            for name, model in self.devices.items():
                for trigger in model.triggers:
                    if env_levels.get(trigger.variable) == trigger.level:
                        nxt = model.next_state(device_states[name], trigger.command)
                        if nxt != device_states[name]:
                            device_states[name] = nxt
                            changed = True
            if not changed:
                return JointState.make(device_states, env_levels)
        return JointState.make(device_states, self._settle(device_states, exogenous))

    def _settle(
        self, device_states: dict[str, str], exogenous: dict[str, str]
    ) -> dict[str, str]:
        inputs: dict[str, float] = {}
        held: dict[str, str] = {}
        for name, model in self.devices.items():
            for key, value in model.effect_inputs(device_states[name]).items():
                inputs[key] = inputs.get(key, 0.0) + value
            for variable, level in model.binding_for(device_states[name]):
                held[variable] = level
        return self.environment.settle(inputs, held, exogenous)
