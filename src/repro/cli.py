"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``demo fig3|fig4|fig5|thermal`` -- run a paper scenario, current world
  vs IoTSec, and print the outcome plus a deployment report.
- ``table1`` -- replay all seven Table 1 vulnerability rows.
- ``model-audit`` -- fuzz the model library and print the attack graph +
  hardening plan for a canned smart home.
- ``report`` -- build a secured home, attack it, print the operator view.
- ``metrics`` -- same scenario, but export the metrics registry
  (Prometheus text, or ``--json`` for the raw snapshot).
- ``trace <device>`` -- same scenario, then print the causal chain(s)
  (packet -> alert -> escalation -> posture) for one device.
- ``audit [--since T] [--kind K]`` -- same scenario, then query the
  security audit journal (the flight recorder).
- ``incident <device>`` -- same scenario, then reconstruct the device's
  incident: journal + traces + metrics joined into one timeline
  (``--chaos`` swaps in the fault-injection scenario).
- ``chaos`` -- partition the control channel and crash a µmbox under
  attack; compare the no-resilience baseline against retry + fail-closed
  + health-check recovery.  ``--plan`` selects the fault plan: the
  built-ins ``standard`` and ``controller``, or a JSON file; malformed
  plans exit 2 with a one-line error.
- ``failover`` -- crash the controller mid-attack and compare cold
  restart against hot-standby failover (``--storm`` compares the ingest
  queue's shedding arms under a 10x alert flood instead).
- ``dlq`` -- run the durable-telemetry home (store-and-forward buffers +
  offset-tracked replay) with a rogue peer injecting malformed and
  reputation-flagged stream records, then inspect the controller's
  dead-letter queue: what was quarantined, from whom, and why.
"""

from __future__ import annotations

import argparse
import json
import random
import sys


def _demo_fig4(protect: bool) -> None:
    from repro import SecuredDeployment, build_recommended_posture
    from repro.attacks.exploits import EXPLOITS
    from repro.core.metrics import summarize
    from repro.devices.library import smart_camera

    dep = SecuredDeployment.build()
    dep.add_device(smart_camera, "cam")
    attacker = dep.add_attacker()
    dep.finalize()
    if protect:
        dep.secure(
            "cam",
            build_recommended_posture("password_proxy", "cam", new_password="S3cure!"),
        )
    result = EXPLOITS["default_credential_hijack"].launch(
        attacker, "cam", dep.sim, resource="image"
    )
    dep.run(until=30.0)
    arm = "IoTSec" if protect else "current world"
    print(f"[fig4 / {arm}] hijack={result.succeeded} loot={len(attacker.loot_from('cam'))}")
    if protect:
        print(summarize(dep).render())


def _demo_fig5(protect: bool) -> None:
    from repro import SecuredDeployment
    from repro.attacks.exploits import EXPLOITS
    from repro.core.metrics import summarize
    from repro.devices.library import WEMO_BACKDOOR_PORT, smart_camera, smart_plug
    from repro.policy.posture import MboxSpec, Posture

    dep = SecuredDeployment.build()
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "wemo", load={"hazard": 1.0})
    attacker = dep.add_attacker()
    dep.finalize()
    if protect:
        dep.secure(
            "wemo",
            Posture.make(
                "occupancy-gate",
                MboxSpec.make(
                    "context_gate", commands=["on"], require={"env:occupancy": "present"}
                ),
            ),
        )
    holder: dict = {}
    dep.sim.schedule(
        1.0,
        lambda: holder.update(
            r=EXPLOITS["backdoor_command"].launch(
                attacker, "wemo", dep.sim, backdoor_port=WEMO_BACKDOOR_PORT, command="on"
            )
        ),
    )
    dep.run(until=300.0)
    arm = "IoTSec" if protect else "current world"
    print(
        f"[fig5 / {arm}] oven={dep.devices['wemo'].state}"
        f" smoke={dep.env.level('smoke')}"
    )
    if protect:
        print(summarize(dep).render())


def _demo_fig3(protect: bool) -> None:
    from repro import SecuredDeployment
    from repro.attacks.scenarios import fig3_break_in
    from repro.core.metrics import summarize
    from repro.devices.library import (
        FIREALARM_BACKDOOR_PORT,
        fire_alarm,
        window_actuator,
    )
    from repro.learning.repository import CrowdRepository
    from repro.learning.signatures import backdoor_signature
    from repro.policy.builder import PolicyBuilder
    from repro.policy.context import SUSPICIOUS
    from repro.policy.ifttt import Recipe
    from repro.policy.posture import block_commands

    dep = SecuredDeployment.build()
    dep.policy = (
        PolicyBuilder()
        .device("fire_alarm")
        .device("window")
        .when("ctx:fire_alarm", SUSPICIOUS)
        .give("window", block_commands("open", name="block-open"), priority=200)
        .build()
    )
    alarm = dep.add_device(fire_alarm, "fire_alarm")
    window = dep.add_device(window_actuator, "window")
    attacker = dep.add_attacker()
    dep.finalize()
    dep.hub.add_recipe(Recipe("ventilate", "dev:fire_alarm", "alarm", "window", "open"))
    dep.hub.watch_devices(lambda n: dep.devices[n].state if n in dep.devices else None)
    if protect:
        repo = CrowdRepository(dep.sim)
        repo.publish(backdoor_signature(alarm.sku, FIREALARM_BACKDOOR_PORT), reporter="crowd")
        dep.attach_repository(repo)
        dep.enforce_baseline()
    campaign = fig3_break_in(
        attacker, dep.sim, window_is_open=lambda: window.state == "open"
    )
    campaign.launch(dep.sim, until=120.0)
    dep.run(until=120.0)
    arm = "IoTSec" if protect else "current world"
    print(f"[fig3 / {arm}] breached={campaign.succeeded()} window={window.state}")
    if protect:
        print(summarize(dep).render())


def _demo_thermal(protect: bool) -> None:
    from repro import SecuredDeployment
    from repro.attacks.scenarios import thermal_break_in
    from repro.devices.library import smart_plug, window_actuator
    from repro.environment.physics import ThermalProcess
    from repro.learning.repository import CrowdRepository
    from repro.learning.signatures import backdoor_signature
    from repro.policy.ifttt import Recipe

    dep = SecuredDeployment.build()
    ac = dep.add_device(smart_plug, "ac_plug", load={"cool_watts": 700.0})
    window = dep.add_device(window_actuator, "window")
    attacker = dep.add_attacker()
    dep.finalize()
    for i, process in enumerate(dep.env.processes):
        if isinstance(process, ThermalProcess):
            dep.env.processes[i] = ThermalProcess(outside=35.0)
    ac.apply_command("on", src="hub", via="local")
    dep.hub.add_recipe(Recipe("cool-down", "env:temperature", "high", "window", "open"))
    if protect:
        repo = CrowdRepository(dep.sim)
        repo.publish(
            backdoor_signature(ac.sku, ac.firmware.backdoor_port), reporter="crowd"
        )
        dep.attach_repository(repo)
        dep.enforce_baseline()
    campaign = thermal_break_in(
        attacker, dep.sim, window_is_open=lambda: window.state == "open"
    )
    campaign.launch(dep.sim, until=1200.0)
    dep.run(until=1200.0)
    arm = "IoTSec" if protect else "current world"
    print(
        f"[thermal / {arm}] ac={ac.state} temp={dep.env.level('temperature')}"
        f" window={window.state} breached={campaign.succeeded()}"
    )


DEMOS = {
    "fig3": _demo_fig3,
    "fig4": _demo_fig4,
    "fig5": _demo_fig5,
    "thermal": _demo_thermal,
}


def cmd_demo(args: argparse.Namespace) -> int:
    demo = DEMOS[args.scenario]
    demo(protect=False)
    demo(protect=True)
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.devices.vulnerabilities import TABLE1

    print(f"{'#':<3}{'device':<22}{'flaw':<24}{'mitigation'}")
    for row in TABLE1:
        print(f"{row.row:<3}{row.device:<22}{row.flaw_class:<24}{row.mitigation}")
    print("\nRun `pytest benchmarks/bench_table1_vulnerabilities.py -s` for the full replay.")
    return 0


def cmd_model_audit(args: argparse.Namespace) -> int:
    from repro.devices.library import fire_alarm, smart_plug, window_actuator
    from repro.learning.abstract_env import AbstractWorld
    from repro.learning.attackgraph import AttackGraphBuilder, envfact
    from repro.learning.fuzzing import ModelFuzzer, exhaustive_edges
    from repro.netsim.simulator import Simulator
    from repro.policy.ifttt import Recipe

    sim = Simulator()
    devices = {
        d.name: d
        for d in (
            smart_plug("heater_plug", sim, load={"heat_watts": 1500.0}),
            fire_alarm("alarm", sim),
            window_actuator("window", sim),
        )
    }
    world = AbstractWorld({n: d.model for n, d in devices.items()})
    truth, __, states = exhaustive_edges(world)
    fuzz = ModelFuzzer(world, random.Random(args.seed)).run(2000)
    print(f"abstract states: {states}; implicit couplings: {len(truth)}; "
          f"fuzzer coverage: {fuzz.coverage_against(truth):.0%}")
    builder = AttackGraphBuilder(
        {n: (d.model, d.firmware) for n, d in devices.items()},
        recipes=[Recipe("cool-down", "env:temperature", "high", "window", "open")],
    )
    goal = envfact("window", "open")
    for path in builder.paths_to(goal):
        print(f"  [{path.stages} stages] {path}")
    plan = builder.hardening_plan(goal)
    print("hardening plan:", ", ".join(f"{d}->{m}" for d, m in plan) or "(nothing needed)")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """The federation story: one victim site buys fleet immunity."""
    from repro.attacks.exploits import EXPLOITS
    from repro.core.deployment import SecuredDeployment
    from repro.devices.library import smart_camera
    from repro.learning.repository import CrowdRepository
    from repro.learning.traceminer import LabelledTrace, mine_and_publish
    from repro.mboxes.elements import PacketLogger
    from repro.netsim.simulator import Simulator
    from repro.policy.posture import MboxSpec, Posture

    sim = Simulator()
    repo = CrowdRepository(sim, free_rider_delay=5.0, base_delay=1.0)
    posture = Posture.make(
        "forensic-monitor",
        MboxSpec.make("packet_logger", capture=True),
        MboxSpec.make("signature_ids", sku="dlink:DCS-930L:1.0"),
    )
    sites, attackers = [], []
    for i in range(args.sites):
        site = SecuredDeployment.build(sim=sim)
        site.add_device(smart_camera, "cam")
        attackers.append(site.add_attacker())
        site.finalize()
        site.attach_repository(repo)
        site.secure("cam", posture)
        sites.append(site)

    results = [None] * args.sites

    def attack(i: int) -> None:
        results[i] = EXPLOITS["default_credential_hijack"].launch(
            attackers[i], "cam", sim, resource="image"
        )

    def respond() -> None:
        mbox = sites[0].cluster.mboxes["cam"]
        logger = next(e for e in mbox.elements if isinstance(e, PacketLogger))
        attack_pkts = [p for p in logger.captured if p.src == "attacker"]
        if attack_pkts:
            mine_and_publish(
                repo,
                LabelledTrace.make(attack=attack_pkts),
                sku="dlink:DCS-930L:1.0",
                reporter="site-0-operator",
                flaw_class="exposed-credentials",
            )
            print(f"t={sim.now:.0f}s  site 0 mined + published a signature")

    for i in range(args.sites):
        sim.schedule(1.0 + i * 30.0, attack, i)
    sim.schedule(11.0, respond)
    sim.run(until=args.sites * 30.0 + 30.0)

    for i, site in enumerate(sites):
        compromised = bool(attackers[i].loot_from("cam"))
        print(
            f"site {i}: attacked t={1 + i * 30:>4}s -> "
            f"{'COMPROMISED' if compromised else 'safe (signature blocked it)'}"
        )
    lost = sum(1 for i in range(args.sites) if attackers[i].loot_from("cam"))
    print(f"\nfleet losses: {lost}/{args.sites} "
          f"(without sharing it would have been {args.sites}/{args.sites})")
    return 0


def cmd_federation(args: argparse.Namespace) -> int:
    """The multi-site control plane: blackout drill or parallel scale run."""
    if args.scale:
        from repro.federation import run_federation, shard_fleet

        out = run_federation(
            shard_fleet(args.scale, args.sites), workers=args.workers
        )
        print(
            f"{out['devices']:,} devices across {out['sites']} sites "
            f"({out['mode']}): {out['events']:,} sim events in "
            f"{out['wall_s']:.1f}s = {out['aggregate_events_per_s']:,.0f} "
            "events/s aggregate"
        )
        for row in out["per_site"]:
            print(
                f"  {row['site']}: {row['devices']} devices, "
                f"{row['events']:,} events, build {row['build_s']:.1f}s, "
                f"run {row['run_s']:.1f}s, blocked "
                f"{row['attacks_blocked']}/{row['attacks_launched']}"
            )
        print(
            f"compromised: {out['compromised']} "
            f"(blocked {out['attacks_blocked']}/{out['attacks_launched']})"
        )
        return 0

    from repro.faults.scenario import (
        FEDERATION_BLACKOUT_END,
        FEDERATION_BLACKOUT_START,
        run_federation_blackout_scenario,
    )

    out = run_federation_blackout_scenario(sites=args.sites)
    window = f"t={FEDERATION_BLACKOUT_START:.0f}..{FEDERATION_BLACKOUT_END:.0f}s"
    print(f"coordinator blackout drill: {args.sites} sites, WAN dark {window}\n")
    print(f"  patient zero compromised pre-signature: "
          f"{'yes' if out['patient_zero_compromised'] else 'no'}")
    print(f"  mid-blackout attacks blocked on cached policy: "
          f"{out['attacks_blocked']}/{out['attacks_launched'] - 1}")
    print(f"  enforcement gaps during blackout: {out['enforcement_gaps']}")
    print(f"  signatures versioned fleet-wide: {out['signatures_propagated']} "
          f"(propagation lag {out['propagation_lag_v1']:.3f}s)")
    print(f"  autonomy spells journaled: {out['autonomy_enters']} enter / "
          f"{out['autonomy_exits']} exit ({out['offline_s']:.0f} site-seconds)")
    print(f"  out-of-order updates on heal: {out['out_of_order']}")
    print(f"  poisoned reports quarantined to DLQ: {out['dlq_quarantined']}")
    print(f"  reconverged after heal: {'yes' if out['converged'] else 'NO'}")
    if out["enforcement_gaps"]:
        for detail in out["gap_details"]:
            print(f"    GAP: {detail}")
        return 1
    print("\nevery site kept enforcing on cached policy for the whole outage")
    return 0


def cmd_policy(args: argparse.Namespace) -> int:
    """Export a sample home's default policy as reviewable JSON."""
    from repro import SecuredDeployment
    from repro.devices.library import smart_camera, smart_plug
    from repro.policy.serialization import dumps

    dep = SecuredDeployment.build()
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "plug")
    dep.finalize()
    print(dumps(dep.policy))
    return 0


def _attacked_home(setup=None):
    """The canned scenario behind ``report``/``metrics``/``trace``: a
    secured two-device home whose camera gets brute-forced.

    ``setup(dep)``, when given, runs right before the clock starts --
    ``metrics --watch`` hooks its periodic re-render there.
    """
    from repro import SecuredDeployment
    from repro.attacks.exploits import EXPLOITS
    from repro.devices.library import smart_camera, smart_plug

    dep = SecuredDeployment.build()
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "plug")
    attacker = dep.add_attacker()
    dep.finalize()
    dep.enforce_baseline()
    EXPLOITS["brute_force_login"].launch(attacker, "cam", dep.sim)
    if setup is not None:
        setup(dep)
    dep.run(until=60.0)
    return dep


def cmd_report(args: argparse.Namespace) -> int:
    from repro.core.metrics import summarize

    print(summarize(_attacked_home()).render())
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import to_prometheus

    setup = None
    if args.watch is not None:
        if args.watch <= 0:
            print("error: --watch period must be positive", file=sys.stderr)
            return 2

        def setup(dep):
            def show() -> None:
                print(f"--- t={dep.sim.now:.1f}s ---")
                if args.json:
                    print(json.dumps(dep.sim.metrics.snapshot(), indent=2, sort_keys=True))
                else:
                    print(to_prometheus(dep.sim.metrics))
                print()

            dep.sim.every(args.watch, show)

    dep = _attacked_home(setup=setup) if setup is not None else _attacked_home()
    registry = dep.sim.metrics
    snapshot = registry.snapshot()
    if not registry.enabled or not any(snapshot.values()):
        print("error: metrics registry is empty (observability disabled?)")
        return 1
    if args.watch is not None:
        print(f"--- t={dep.sim.now:.1f}s (final) ---")
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(to_prometheus(registry))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import trace_as_dicts

    dep = _attacked_home()
    if args.device not in dep.devices:
        known = ", ".join(sorted(dep.devices))
        print(f"error: unknown device {args.device!r} (known: {known})")
        return 1
    tracer = dep.sim.tracer
    trace_ids = tracer.traces_for(args.device)
    if args.json:
        print(json.dumps([trace_as_dicts(tracer, t) for t in trace_ids], indent=2))
        return 0
    if not trace_ids:
        print(f"no traces recorded for device {args.device!r}")
        return 1
    for trace_id in trace_ids:
        print(tracer.render(trace_id))
    return 0


def cmd_journal_audit(args: argparse.Namespace) -> int:
    """Query the flight recorder for the canned attacked-home scenario."""
    dep = _attacked_home()
    entries = dep.sim.journal.entries(since=args.since, kind=args.kind)
    if args.json:
        print(json.dumps([e.as_dict() for e in entries], indent=2))
        return 0
    stats = dep.sim.journal.stats()
    print(
        f"audit journal: {stats['recorded']} recorded,"
        f" {stats['retained']} retained, {stats['evicted']} evicted"
        f" ({len(entries)} match)"
    )
    for entry in entries:
        trace = f" trace={entry.trace_id}" if entry.trace_id is not None else ""
        detail = " ".join(
            f"{k}={v}" for k, v in entry.fields.items() if v not in ("", None)
        )
        print(
            f"  #{entry.seq:<5} t={entry.at:>9.4f}  {entry.kind:<16}"
            f" {entry.device or '-':<10}{trace}  {detail}".rstrip()
        )
    return 0


def _print_arm_table(results: list[dict], cols: tuple[str, ...]) -> None:
    print(f"\n{'metric':<26}" + "".join(f"{r['arm']:>12}" for r in results))
    for col in cols:
        cells = "".join(f"{str(r.get(col)):>12}" for r in results)
        print(f"{col:<26}{cells}")


def _failover_comparison(seed: int, json_out: bool) -> int:
    """Both arms of the controller-crash experiment (bench E13a)."""
    from repro.faults.ha_scenario import run_failover_scenario

    results = [run_failover_scenario(standby, seed=seed) for standby in (False, True)]
    if json_out:
        print(json.dumps(results, indent=2))
        return 0
    _print_arm_table(
        results,
        (
            "attack_attempts",
            "cam_login_successes",
            "blind_window_s",
            "cam_enforced_at",
            "checkpoints",
            "failovers",
            "restarts",
            "ctrl_retries",
            "ctrl_giveups",
            "events",
        ),
    )
    crash, standby = results
    if crash["blind_window_s"] > 0:
        ratio = standby["blind_window_s"] / crash["blind_window_s"]
        print(
            f"\nblind window: {crash['blind_window_s']}s (cold restart) -> "
            f"{standby['blind_window_s']}s (hot standby, {ratio:.1%} of the outage)"
        )
    return 0


def cmd_failover(args: argparse.Namespace) -> int:
    """Controller survivability, both arms (bench E13).

    Default: crash the controller mid-attack and compare the cold-restart
    blind window against hot-standby failover.  ``--storm``: flood the
    ingest queue 10x over its service rate and compare plain drop-tail
    against prioritized shedding.
    """
    if not args.storm:
        return _failover_comparison(args.seed, args.json)

    from repro.faults.ha_scenario import run_storm_scenario

    results = [run_storm_scenario(shedding, seed=args.seed) for shedding in (False, True)]
    if args.json:
        print(json.dumps(results, indent=2))
        return 0
    _print_arm_table(
        results, ("enforcing_processed_frac", "shed_transitions", "events")
    )
    for cls in ("enforcing", "telemetry"):
        cells = "".join(f"{str(r['p99_latency_s'][cls]):>12}" for r in results)
        print(f"{'p99_latency_s[' + cls + ']':<26}{cells}")
    fifo, shed = results
    print(
        f"\nenforcing alerts kept under the storm: "
        f"{fifo['enforcing_processed_frac']:.1%} (drop-tail) -> "
        f"{shed['enforcing_processed_frac']:.1%} (prioritized shedding)"
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the standard resilience scenario under injected faults, both arms.

    The baseline arm has no retry, no health checks and fail-open µmboxes;
    the resilient arm retries control messages across the partition,
    fails closed, and reboots + re-pins the crashed µmbox.  The printed
    exposure window is the headline number of bench E12.

    ``--plan`` picks the fault schedule: ``standard`` (partition + µmbox
    crash), ``controller`` (delegates to the E13 controller-crash
    comparison), or a path to a JSON plan document.  A malformed plan is
    a usage error: one line on stderr, exit status 2.
    """
    from repro.faults.chaos import ChaosGenerator
    from repro.faults.plan import FaultPlan
    from repro.faults.scenario import run_resilience_scenario, standard_fault_plan

    if args.plan == "controller":
        return _failover_comparison(args.seed, args.json)
    if args.random:
        plan = ChaosGenerator(args.seed).generate(
            args.duration,
            endpoints=("*",),
            devices=("cam", "plug"),
            link_flaps=0,
            partitions=1,
            crashes=2,
            max_fault=min(5.0, args.duration / 4),
        )
    elif args.plan == "standard":
        plan = standard_fault_plan()
    else:
        try:
            text = open(args.plan, encoding="utf-8").read()
        except OSError as exc:
            print(f"error: cannot read fault plan {args.plan!r}: {exc}", file=sys.stderr)
            return 2
        try:
            plan = FaultPlan.from_json(text)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    arms = [False] if args.no_resilience else [False, True]
    results = [
        run_resilience_scenario(
            resilient,
            seed=args.seed,
            horizon=args.duration,
            drop_prob=args.drop,
            jitter=args.jitter,
            plan=plan,
        )
        for resilient in arms
    ]
    if args.json:
        print(json.dumps({"plan": plan.as_dict(), "arms": results}, indent=2))
        return 0
    print(f"fault plan: {plan!r}")
    for event in plan:
        extra = f" for {event.duration}s" if event.duration else ""
        print(f"  t={event.at:>7.3f}  {event.kind:<12} {event.target}{extra}")
    cols = (
        "attack_attempts",
        "attack_successes",
        "exposure_s",
        "mean_time_to_reenforce_s",
        "ctrl_retries",
        "ctrl_giveups",
        "mbox_restarts",
        "fail_open_passes",
    )
    print(f"\n{'metric':<26}" + "".join(f"{r['arm']:>12}" for r in results))
    for col in cols:
        cells = "".join(f"{str(r.get(col)):>12}" for r in results)
        print(f"{col:<26}{cells}")
    if len(results) == 2:
        base, res = results
        print(
            f"\nexposure window: {base['exposure_s']}s -> {res['exposure_s']}s "
            f"({'bounded' if res['exposure_s'] < base['exposure_s'] else 'NOT bounded'})"
        )
    return 0


def _campaign_summary(score: dict) -> list[tuple]:
    ttc = score["time_to_containment_s"]
    return [
        ("class", score["class"]),
        ("stages ok", f"{score['stages_ok']}/{score['stages']}"),
        ("attacked", ", ".join(score["attacked"]) or "-"),
        ("alerted", ", ".join(score["alerted"]) or "-"),
        ("detection precision", f"{score['detection_precision']:.2f}"),
        ("detection recall", f"{score['detection_recall']:.2f}"),
        (
            "time to containment",
            ", ".join(f"{d}={t:.2f}s" for d, t in ttc.items()) or "-",
        ),
        ("exposure total", f"{score['total_exposure_s']:.2f}s"),
        ("containment misses", ", ".join(score["containment_misses"]) or "none"),
        ("containment SLO breaches", score["containment_breaches"]),
        ("fabric degraded", score["fabric_degraded"]),
        ("graceful degradation", "ok" if score["graceful_degradation"]["ok"] else "VIOLATED"),
        ("journal digest", score["journal_digest"][:16]),
    ]


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run adversarial campaigns against the standard home and score them.

    ``--list`` prints the shipped corpus; ``--name`` runs one campaign,
    ``--class`` a whole class, ``--file`` a campaign JSON document.  A
    malformed campaign file is a usage error: one line on stderr, exit
    status 2 (mirroring ``chaos --plan``).
    """
    from repro.faults.campaign import Campaign
    from repro.faults.campaign_library import (
        CAMPAIGNS,
        campaigns_by_class,
        run_campaign,
    )

    if args.file:
        try:
            text = open(args.file, encoding="utf-8").read()
        except OSError as exc:
            print(f"error: cannot read campaign {args.file!r}: {exc}", file=sys.stderr)
            return 2
        try:
            selected = [Campaign.from_json(text)]
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.name:
        if args.name not in CAMPAIGNS:
            print(
                f"error: no campaign named {args.name!r} (see --list)",
                file=sys.stderr,
            )
            return 2
        selected = [CAMPAIGNS[args.name]]
    elif args.campaign_class:
        selected = campaigns_by_class(args.campaign_class)
    else:
        selected = []

    if args.list or not selected:
        if args.json:
            print(json.dumps([c.as_dict() for c in CAMPAIGNS.values()], indent=2))
            return 0
        print(f"{'campaign':<28}{'class':<20}{'stages':>7}  expect contained")
        for c in CAMPAIGNS.values():
            print(
                f"{c.name:<28}{c.campaign_class:<20}{len(c.stages):>7}  "
                f"{', '.join(c.expect_contained) or '-'}"
            )
        return 0

    scores = [run_campaign(c, seed=args.seed) for c in selected]
    if args.json:
        print(json.dumps(scores, indent=2, default=str))
        return 0
    for score in scores:
        print(f"\ncampaign: {score['campaign']}  (seed {score['seed']})")
        for label, value in _campaign_summary(score):
            print(f"  {label:<26}{value}")
    missed = sorted({m for s in scores for m in s["containment_misses"]})
    if missed:
        print(f"\nCONTAINMENT MISSED: {', '.join(missed)}")
        return 1
    print(f"\nall {len(scores)} campaign(s) fully contained")
    return 0


def _durable_home():
    """The canned durable-telemetry scenario behind ``dlq``: a secured
    home whose alerts ride the store-and-forward stream, with a rogue
    peer injecting malformed records and a reputation-flagged host."""
    from repro import SecuredDeployment
    from repro.attacks.exploits import EXPLOITS
    from repro.devices.library import smart_camera, smart_plug

    dep = SecuredDeployment.build(durable_telemetry=True)
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "plug")
    attacker = dep.add_attacker()
    dep.finalize()
    dep.enforce_baseline()
    consumer = dep.controller.stream
    assert consumer is not None
    # Reputation decision: everything "rogue-host" sends is quarantined.
    consumer.flag_host("rogue-host")

    def inject_flagged() -> None:
        dep.channel.send(
            "rogue-host",
            dep.CONTROLLER,
            "stream",
            {
                "host": "rogue-host",
                "lane": "bulk",
                "records": [
                    {
                        "offset": 1,
                        "at": dep.sim.now,
                        "body": {
                            "device": "cam",
                            "kind": "telemetry",
                            "mbox": "spoofed",
                            "detail": {"state": "recording"},
                            "trace": None,
                        },
                    }
                ],
            },
        )

    def inject_malformed() -> None:
        dep.channel.send(
            "buggy-host",
            dep.CONTROLLER,
            "stream",
            {
                "host": "buggy-host",
                "lane": "bulk",
                "records": [
                    {"offset": 1, "at": dep.sim.now, "body": {"device": "", "kind": "telemetry"}},
                    {"offset": 2, "at": dep.sim.now, "body": {"device": "plug", "kind": ""}},
                ],
            },
        )

    dep.sim.schedule(5.0, inject_flagged)
    dep.sim.schedule(6.0, inject_malformed)
    EXPLOITS["brute_force_login"].launch(attacker, "cam", dep.sim)
    dep.run(until=60.0)
    return dep


def cmd_dlq(args: argparse.Namespace) -> int:
    """Inspect the dead-letter queue of the durable-telemetry scenario."""
    dep = _durable_home()
    dlq = dep.controller.dlq
    consumer = dep.controller.stream
    assert dlq is not None and consumer is not None
    entries = dlq.entries(device=args.device or None, reason=args.reason or None)
    if args.json:
        print(
            json.dumps(
                {
                    "stats": dlq.stats(),
                    "consumer": consumer.stats(),
                    "entries": entries,
                },
                indent=2,
                default=str,
            )
        )
        return 0
    stats = dlq.stats()
    reasons = ", ".join(f"{k}={v}" for k, v in sorted(stats["by_reason"].items()))
    print(
        f"dead-letter queue: {stats['depth']} retained,"
        f" {stats['quarantined']} quarantined ({reasons or 'none'})"
    )
    print(
        f"stream consumer: {consumer.delivered} delivered,"
        f" {consumer.duplicates} duplicates, {consumer.gaps} gaps"
    )
    if not entries:
        print("(no matching entries)")
        return 0
    print(f"\n{'t':>9}  {'host':<12}{'reason':<18}{'device':<10}{'kind':<12}offset")
    for entry in entries:
        print(
            f"{entry['at']:>9.3f}  {entry['host']:<12}{entry['reason']:<18}"
            f"{entry['device'] or '-':<10}{entry['alert_kind'] or '-':<12}"
            f"{entry['offset'] if entry['offset'] is not None else '-'}"
        )
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    from repro.faults.scenario import HEALTH_PLANS, run_health_scenario

    if args.watch is not None and args.watch <= 0:
        print("error: --watch period must be positive", file=sys.stderr)
        return 2

    def setup(dep):
        if args.watch is None:
            return
        plane = dep.health_plane

        def show() -> None:
            print(f"--- t={dep.sim.now:.1f}s ---")
            print(plane.render())
            print()

        dep.sim.every(args.watch, show)

    try:
        result = run_health_scenario(args.plan, seed=args.seed, keep_dep=True, setup=setup)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    dep = result.pop("dep")
    plane = dep.health_plane
    if plane is None or not plane.enabled:
        print("error: health plane is disabled (observe=False?)", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    if args.plan != "none":
        print(f"fault plan: {args.plan}")
    print(plane.render())
    if result["breach_events"]:
        print("\nbreach chains (journaled, trace-linked):")
        recovered = {r["trace"]: r for r in result["recovery_events"]}
        for breach in result["breach_events"]:
            rec = recovered.get(breach["trace"])
            tail = (
                f" -> recovered t={rec['at']:.1f}s (after {rec['breach_s']:.1f}s)"
                if rec is not None
                else " -> STILL BREACHED"
            )
            print(
                f"  t={breach['at']:>7.1f}s  {breach['slo']}"
                f" [{breach['severity']}] trace={breach['trace']}{tail}"
            )
    return 0


def cmd_incident(args: argparse.Namespace) -> int:
    from repro.obs import reconstruct

    if args.chaos:
        from repro.faults.scenario import run_resilience_scenario

        dep = run_resilience_scenario(True, keep_dep=True, health=args.site)["dep"]
    else:
        dep = _attacked_home()
    if args.device not in dep.devices:
        known = ", ".join(sorted(dep.devices))
        print(f"error: unknown device {args.device!r} (known: {known})")
        return 1
    state = dep.controller.pipeline.system_state()
    incident = reconstruct(
        dep.sim,
        args.device,
        policy=dep.policy,
        state=state,
        dlq=dep.controller.dlq,
        site_events=args.site,
    )
    if args.json:
        print(json.dumps(incident.as_dict(), indent=2))
    else:
        print(incident.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="IoTSec (HotNets 2015) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a paper scenario, both arms")
    demo.add_argument("scenario", choices=sorted(DEMOS))
    demo.set_defaults(fn=cmd_demo)

    table1 = sub.add_parser("table1", help="list the Table 1 registry")
    table1.set_defaults(fn=cmd_table1)

    model_audit = sub.add_parser(
        "model-audit", help="fuzz models + attack-graph a canned home"
    )
    model_audit.add_argument("--seed", type=int, default=7)
    model_audit.set_defaults(fn=cmd_model_audit)

    audit = sub.add_parser("audit", help="query the security audit journal")
    audit.add_argument("--since", type=float, default=None, help="simulated time floor")
    audit.add_argument("--kind", default=None, help="filter by entry kind")
    audit.add_argument("--json", action="store_true", help="entry dicts instead of text")
    audit.set_defaults(fn=cmd_journal_audit)

    incident = sub.add_parser(
        "incident", help="reconstruct one device's incident from the flight recorder"
    )
    incident.add_argument("device", nargs="?", default="cam")
    incident.add_argument("--json", action="store_true", help="incident dict instead of text")
    incident.add_argument(
        "--chaos",
        action="store_true",
        help="reconstruct from the chaos scenario (partition + µmbox crash)"
        " instead of the canned brute-force home",
    )
    incident.add_argument(
        "--site",
        action="store_true",
        help="fold site-scoped events (SLO breaches, health transitions,"
        " stream replays, failovers) into the device timeline",
    )
    incident.set_defaults(fn=cmd_incident)

    report = sub.add_parser("report", help="operator report for a secured home under attack")
    report.set_defaults(fn=cmd_report)

    metrics = sub.add_parser("metrics", help="export the metrics registry for the report scenario")
    metrics.add_argument("--json", action="store_true", help="raw snapshot instead of Prometheus text")
    metrics.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="N",
        help="re-render the snapshot every N simulated seconds while the"
        " scenario runs (plus one final render)",
    )
    metrics.set_defaults(fn=cmd_metrics)

    health = sub.add_parser(
        "health", help="SLO burn rates + subsystem health rollup for a seeded run"
    )
    health.add_argument(
        "--plan",
        default="none",
        choices=("none", "standard", "controller", "long-partition"),
        help="fault plan to drive the run (default: the all-green standard run)",
    )
    health.add_argument("--seed", type=int, default=7)
    health.add_argument("--json", action="store_true", help="summary dict instead of text")
    health.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="N",
        help="re-render the health report every N simulated seconds",
    )
    health.set_defaults(fn=cmd_health)

    trace = sub.add_parser("trace", help="print causal traces (packet -> posture) for one device")
    trace.add_argument("device", nargs="?", default="cam")
    trace.add_argument("--json", action="store_true", help="span dicts instead of rendered text")
    trace.set_defaults(fn=cmd_trace)

    policy = sub.add_parser("policy", help="export a sample default policy as JSON")
    policy.set_defaults(fn=cmd_policy)

    federation = sub.add_parser(
        "federation",
        help="multi-site control plane: coordinator-blackout drill or "
        "parallel scale run",
    )
    federation.add_argument(
        "--sites", type=int, default=4, help="number of federated sites"
    )
    federation.add_argument(
        "--scale",
        type=int,
        default=0,
        metavar="N",
        help="instead of the blackout drill, shard an N-device fleet "
        "across the sites in parallel worker processes",
    )
    federation.add_argument(
        "--workers", type=int, default=None, help="worker processes for --scale"
    )
    federation.set_defaults(fn=cmd_federation)

    fleet = sub.add_parser("fleet", help="federated-signature story across N sites")
    fleet.add_argument("--sites", type=int, default=6)
    fleet.set_defaults(fn=cmd_fleet)

    campaign = sub.add_parser(
        "campaign",
        help="run adversarial multi-stage campaigns and print per-class "
        "containment scorecards",
    )
    campaign.add_argument("--list", action="store_true", help="list the shipped corpus")
    campaign.add_argument("--name", default=None, help="run one named campaign")
    campaign.add_argument(
        "--class",
        dest="campaign_class",
        default=None,
        choices=("single-flaw", "lateral-movement", "fabric-degradation", "automation-abuse"),
        help="run every campaign of one class",
    )
    campaign.add_argument(
        "--file", default=None, help="run a campaign from a JSON document"
    )
    campaign.add_argument(
        "--seed", type=int, default=None, help="override the campaign's baked-in seed"
    )
    campaign.add_argument(
        "--json", action="store_true", help="scorecard dicts instead of text"
    )
    campaign.set_defaults(fn=cmd_campaign)

    chaos = sub.add_parser(
        "chaos", help="inject faults (partition, µmbox crash) and compare arms"
    )
    chaos.add_argument("--seed", type=int, default=7, help="chaos + fault-model seed")
    chaos.add_argument(
        "--plan",
        default="standard",
        help="fault plan: 'standard', 'controller', or a JSON plan file",
    )
    chaos.add_argument("--duration", type=float, default=30.0, help="simulated horizon")
    chaos.add_argument("--drop", type=float, default=0.0, help="background control-loss prob")
    chaos.add_argument("--jitter", type=float, default=0.0, help="max extra control delay")
    chaos.add_argument(
        "--random",
        action="store_true",
        help="draw the fault plan from the seeded chaos generator"
        " instead of the standard partition+crash plan",
    )
    chaos.add_argument(
        "--no-resilience", action="store_true", help="run only the baseline arm"
    )
    chaos.add_argument("--json", action="store_true", help="plan + both arms as JSON")
    chaos.set_defaults(fn=cmd_chaos)

    failover = sub.add_parser(
        "failover", help="controller crash: cold restart vs hot-standby takeover"
    )
    failover.add_argument("--seed", type=int, default=7, help="scenario seed")
    failover.add_argument(
        "--storm",
        action="store_true",
        help="compare ingest-queue arms under a 10x alert storm instead",
    )
    failover.add_argument("--json", action="store_true", help="both arms as JSON")
    failover.set_defaults(fn=cmd_failover)

    dlq = sub.add_parser(
        "dlq", help="inspect the durable-telemetry dead-letter queue"
    )
    dlq.add_argument("--device", default=None, help="only entries for this device")
    dlq.add_argument("--reason", default=None, help="only entries with this refusal reason")
    dlq.add_argument("--json", action="store_true", help="stats + entries as JSON")
    dlq.set_defaults(fn=cmd_dlq)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
