#!/usr/bin/env python3
"""Section 4.2's offline audit: fuzz the models, build the attack graph.

Before deploying a single µmbox, IoTSec can reason about a home purely
from the abstract device models:

1. fuzz the joint device x environment space to find the implicit
   couplings (who can influence whom through physics), and
2. build the attack graph to enumerate multi-stage attacks toward a goal
   ("the window ends up open"), including the ones that ride the owner's
   own automation recipes.

Run:  python examples/attack_graph_audit.py
"""

import random

from repro.devices.library import (
    fire_alarm,
    smart_plug,
    thermostat,
    window_actuator,
)
from repro.learning.abstract_env import AbstractWorld
from repro.learning.attackgraph import AttackGraphBuilder, envfact
from repro.learning.fuzzing import ModelFuzzer, exhaustive_edges
from repro.netsim.simulator import Simulator
from repro.policy.ifttt import Recipe


def main() -> None:
    sim = Simulator()
    devices = {
        d.name: d
        for d in (
            smart_plug("heater_plug", sim, load={"heat_watts": 1500.0}),
            smart_plug("oven_plug", sim, load={"hazard": 1.0, "heat_watts": 2000.0}),
            fire_alarm("alarm", sim),
            window_actuator("window", sim),
            thermostat("thermo", sim),
        )
    }
    recipes = [Recipe("cool-down", "env:temperature", "high", "window", "open")]

    # ------------------------------------------------------------------
    print("Step 1: fuzz the abstract models for implicit couplings")
    world = AbstractWorld({name: dev.model for name, dev in devices.items()})
    truth, env_edges, states = exhaustive_edges(world)
    report = ModelFuzzer(world, random.Random(7)).run(3000)
    print(f"  joint abstract states explored: {states}")
    print(f"  fuzzer coverage of ground truth: {report.coverage_against(truth):.0%}")
    print("  implicit device-to-device couplings found:")
    for edge in sorted(report.interaction_edges, key=str):
        print(f"    {edge}")
    print("  environment couplings (sample):")
    for edge in sorted(report.environment_edges, key=str)[:6]:
        print(f"    {edge}")

    # ------------------------------------------------------------------
    print("\nStep 2: attack graph toward goal env:window=open")
    builder = AttackGraphBuilder(
        {name: (dev.model, dev.firmware) for name, dev in devices.items()},
        recipes=recipes,
    )
    goal = envfact("window", "open")
    paths = builder.paths_to(goal)
    print(f"  graph: {builder.graph.number_of_nodes()} facts, "
          f"{builder.graph.number_of_edges()} inference edges")
    print(f"  attack paths to the goal: {len(paths)}")
    for path in paths:
        print(f"    [{path.stages} stages] {path}")
        print(f"      via: {', '.join(path.exploits)}")
    cuts = builder.cut_devices(goal)
    if cuts:
        print(f"  hardening any of {cuts} severs every path")
    else:
        print("  no single device severs every path -> defend in depth")

    # ------------------------------------------------------------------
    print("\nStep 3: what the audit buys you")
    print("  The thermal path never sends the window a malicious packet;")
    print("  only a policy that reacts to *context* (plug suspicious ->")
    print("  guard the window) can break it. That policy is exactly what")
    print("  examples/cross_device_policy.py deploys.")


if __name__ == "__main__":
    main()
