#!/usr/bin/env python3
"""Section 4.1's crowdsourced signature repository across many sites.

Thousands of homes deploy the same camera SKU.  One of them gets attacked,
publishes an (anonymized) signature, and every other subscriber's IDS
µmbox learns it -- contributors first.  A poisoner then tries to inject a
signature that would block all web traffic, and the reputation system
shuts it down.

Run:  python examples/crowdsourced_defense.py
"""

from repro import SecuredDeployment, build_recommended_posture
from repro.attacks.exploits import EXPLOITS
from repro.devices.library import smart_camera
from repro.learning.anonymize import leaks_identity
from repro.learning.repository import CrowdRepository
from repro.learning.signatures import AttackSignature, SignatureMatch, default_credential_signature
from repro.netsim.simulator import Simulator


def main() -> None:
    sim = Simulator()
    repo = CrowdRepository(sim, free_rider_delay=300.0)

    # --- Site A is attacked and reports what it saw -------------------
    site_a = SecuredDeployment.build(sim=sim)
    cam_a = site_a.add_device(smart_camera, "cam")
    attacker_a = site_a.add_attacker()
    site_a.finalize()
    site_a.attach_repository(repo)
    EXPLOITS["default_credential_hijack"].launch(attacker_a, "cam", sim)
    sim.run(until=10.0)
    print(f"Site A compromised: {bool(attacker_a.loot_from('cam'))}")

    signature = default_credential_signature(cam_a.sku)
    sig_id = repo.publish(signature, reporter="site-a-watchful-admin")
    stored = repo.signatures[sig_id]
    print(f"Published signature for SKU {stored.sku!r} as {stored.reporter!r}")
    print(f"  identity leaked? {leaks_identity(stored, {'site-a-watchful-admin'})}")

    # --- Site B subscribes and is attacked later ----------------------
    site_b = SecuredDeployment.build(sim=sim)
    cam_b = site_b.add_device(smart_camera, "cam")
    attacker_b = site_b.add_attacker()
    site_b.finalize()
    site_b.attach_repository(repo)
    site_b.secure("cam", build_recommended_posture("monitor", "cam", sku=cam_b.sku))
    sim.run(until=400.0)  # past the free-rider delay

    result = EXPLOITS["default_credential_hijack"].launch(attacker_b, "cam", sim)
    sim.run(until=420.0)
    print(f"\nSite B attacked with the same exploit: succeeded={result.succeeded}")
    print(f"Site B alerts: {[a.kind for a in site_b.alerts('cam')]}")
    print(f"Site B camera context: {site_b.controller.context_of('cam')}")

    # --- A poisoner tries to deny service to everyone ------------------
    bogus = AttackSignature(
        sku=cam_b.sku,
        flaw_class="made-up",
        match=SignatureMatch.make(dport=80),  # would match ALL web traffic
        recommended_posture="quarantine",
    )
    bogus_id = repo.publish(bogus, reporter="poisoner")
    print(f"\nPoisoner published signature #{bogus_id}")
    for i in range(6):
        voter = f"validator-{i}"
        for __ in range(10):
            repo.reputation.feedback(voter, validated=True)
        repo.vote(bogus_id, voter, helpful=False)
    print(f"After community down-votes: revoked={repo.is_revoked(bogus_id)}")
    print(f"Repository stats: {repo.stats()}")


if __name__ == "__main__":
    main()
