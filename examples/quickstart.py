#!/usr/bin/env python3
"""Quickstart: build a smart home, attack it, then let IoTSec defend it.

Run:  python examples/quickstart.py
"""

from repro import SecuredDeployment, build_recommended_posture
from repro.attacks.exploits import EXPLOITS
from repro.devices.library import smart_camera, smart_plug


def run(protected: bool) -> None:
    label = "WITH IoTSec" if protected else "CURRENT WORLD"
    print(f"\n--- {label} ---")

    # 1. A home: an edge switch, an automation hub, an Internet uplink,
    #    and (when protected) a security cluster with a controller.
    home = SecuredDeployment.build(with_iotsec=protected)

    # 2. Two devices straight from the library, flaws included:
    #    a camera with a hardcoded admin/admin account (Fig. 4) and a
    #    Belkin-Wemo-style smart plug with a vendor backdoor (Table 1).
    cam = home.add_device(smart_camera, "cam")
    plug = home.add_device(smart_plug, "plug", load={"heat_watts": 1500.0})
    attacker = home.add_attacker()
    home.finalize()

    # 3. When protected, give each device its recommended µmbox posture.
    if protected:
        home.secure(
            "cam",
            build_recommended_posture(
                "password_proxy", "cam", new_password="S3cure!gateway"
            ),
        )
        home.secure(
            "plug",
            build_recommended_posture(
                "stateful_firewall", "plug", trusted_sources=(home.HUB, home.CONTROLLER)
            ),
        )

    # 4. Attack both devices.
    hijack = EXPLOITS["default_credential_hijack"].launch(
        attacker, "cam", home.sim, resource="image"
    )
    backdoor = EXPLOITS["backdoor_command"].launch(
        attacker, "plug", home.sim,
        backdoor_port=plug.firmware.backdoor_port, command="on",
    )

    # 5. Run one simulated minute and report.
    home.run(until=60.0)
    print(f"camera hijacked:        {hijack.succeeded}")
    print(f"images exfiltrated:     {len(attacker.loot_from('cam'))}")
    print(f"plug driven by backdoor:{backdoor.succeeded}  (state={plug.state})")
    if protected:
        kinds = sorted({a.kind for a in home.alerts()})
        print(f"µmbox alerts raised:    {kinds}")
        print(f"camera context:         {home.controller.context_of('cam')}")


def main() -> None:
    run(protected=False)
    run(protected=True)
    print("\nSame devices, same flaws, same attacks -- the network made the difference.")


if __name__ == "__main__":
    main()
