#!/usr/bin/env python3
"""Cross-device and context-aware policy: Figures 3 and 5 in one home.

Two policies that no per-device firewall can express:

1. (Fig. 5) the oven's smart plug accepts "on" only while the camera sees
   a person in the room;
2. (Fig. 3) when the fire alarm looks suspicious (its backdoor was
   probed), the window actuator must refuse "open" commands -- because a
   benign ventilation recipe would otherwise open it for the burglar.

Run:  python examples/cross_device_policy.py
"""

from repro import SecuredDeployment
from repro.attacks.exploits import EXPLOITS
from repro.devices.library import (
    FIREALARM_BACKDOOR_PORT,
    WEMO_BACKDOOR_PORT,
    fire_alarm,
    smart_camera,
    smart_plug,
    window_actuator,
)
from repro.learning.repository import CrowdRepository
from repro.learning.signatures import backdoor_signature
from repro.policy.builder import PolicyBuilder
from repro.policy.context import SUSPICIOUS
from repro.policy.ifttt import Recipe
from repro.policy.posture import MboxSpec, Posture, block_commands


def build_policy():
    return (
        PolicyBuilder()
        .device("fire_alarm")
        .device("window")
        .device("oven_plug")
        .env("smoke", ("clear", "detected"))
        .env("occupancy", ("absent", "present"))
        # Fig. 3: suspicious fire alarm -> window refuses "open"
        .when("ctx:fire_alarm", SUSPICIOUS)
        .give("window", block_commands("open", name="block-open"), priority=200)
        # Fig. 5: oven power gated on occupancy, in *every* state
        .always()
        .give(
            "oven_plug",
            Posture.make(
                "occupancy-gate",
                MboxSpec.make(
                    "context_gate",
                    commands=["on"],
                    require={"env:occupancy": "present"},
                ),
            ),
        )
        .build()
    )


def main() -> None:
    home = SecuredDeployment.build()
    home.policy = build_policy()
    alarm = home.add_device(fire_alarm, "fire_alarm")
    window = home.add_device(window_actuator, "window")
    oven = home.add_device(smart_plug, "oven_plug", load={"hazard": 1.0})
    home.add_device(smart_camera, "cam")
    attacker = home.add_attacker()
    home.finalize()

    # the household automation the attacker would love to ride
    home.hub.add_recipe(Recipe("ventilate", "dev:fire_alarm", "alarm", "window", "open"))
    home.hub.watch_devices(lambda n: home.devices[n].state if n in home.devices else None)

    # crowd knowledge about the fire alarm's vendor backdoor
    repo = CrowdRepository(home.sim)
    repo.publish(backdoor_signature(alarm.sku, FIREALARM_BACKDOOR_PORT), reporter="site-42")
    home.attach_repository(repo)
    home.enforce_baseline()

    print("Policy:", home.policy)
    print("\nPhase 1 (t=5s): attacker probes the fire alarm's backdoor...")
    home.sim.schedule(
        5.0,
        lambda: EXPLOITS["backdoor_command"].launch(
            attacker, "fire_alarm", home.sim,
            backdoor_port=FIREALARM_BACKDOOR_PORT, command="test",
        ),
    )
    print("Phase 2 (t=15s): attacker tries to power the oven, nobody home...")
    home.sim.schedule(
        15.0,
        lambda: EXPLOITS["backdoor_command"].launch(
            attacker, "oven_plug", home.sim,
            backdoor_port=WEMO_BACKDOOR_PORT, command="on",
        ),
    )
    home.run(until=60.0)

    print("\nOutcome:")
    print(f"  fire alarm state/context: {alarm.state} / {home.controller.context_of('fire_alarm')}")
    print(f"  window:                   {window.state}")
    print(f"  window posture now:       {home.orchestrator.posture_of('window').name}")
    print(f"  oven plug:                {oven.state}")
    print(f"  alerts: {[ (a.device, a.kind) for a in home.alerts() ]}")

    print("\nPhase 3 (t=60s): the owner comes home; the oven command is now legitimate.")
    home.env.discrete("occupancy").set("present")
    home.sim.schedule(
        5.0,
        lambda: EXPLOITS["backdoor_command"].launch(
            attacker, "oven_plug", home.sim,
            backdoor_port=WEMO_BACKDOOR_PORT, command="on",
        ),
    )
    home.run(until=120.0)
    print(f"  oven plug with occupant present: {oven.state}")
    print("  (the same packet, allowed by policy -- context decided, not headers)")


if __name__ == "__main__":
    main()
