#!/usr/bin/env python3
"""The Fig. 4 use case, end to end: an IoT security gateway.

A D-Link-style surveillance camera ships with a hardcoded ``admin/admin``
account that the user has no interface to delete.  IoTSec interposes a
password-proxy µmbox on the camera's path: the administrator picks a real
password at the *gateway*; the vendor default keeps working only for the
proxy itself, never for the outside world.

Run:  python examples/smart_home_gateway.py
"""

from repro import SecuredDeployment, build_recommended_posture
from repro.devices import protocol
from repro.devices.library import smart_camera

NEW_PASSWORD = "correct-horse-battery-staple"


def main() -> None:
    home = SecuredDeployment.build()
    cam = home.add_device(smart_camera, "cam")
    attacker = home.add_attacker("attacker")
    admin = home.add_attacker("admin_laptop", latency=0.001)
    home.finalize()

    print("The camera's firmware cannot be fixed:")
    print(f"  patch attempt on device -> {cam.firmware.patch_credentials('admin', NEW_PASSWORD)}")
    print(f"  flaw classes            -> {sorted(cam.firmware.flaw_classes())}")

    print("\nDeploying the password-proxy µmbox (the Fig. 4 gateway)...")
    home.secure(
        "cam",
        build_recommended_posture("password_proxy", "cam", new_password=NEW_PASSWORD),
    )

    outcomes: dict[str, str] = {}

    def attempt(who, password, label, at):
        def send():
            def on_reply(reply):
                outcomes[label] = "ACCEPTED" if protocol.is_ok(reply) else "denied"

            who.request(protocol.login(who.name, "cam", "admin", password), on_reply)
            # no reply within 5s means the gateway dropped it silently
            home.sim.schedule(5.0, lambda: outcomes.setdefault(label, "dropped at gateway"))

        home.sim.schedule(at, send)

    attempt(attacker, "admin", "attacker with vendor default", 1.0)
    attempt(attacker, "123456", "attacker guessing", 2.0)
    attempt(admin, NEW_PASSWORD, "administrator with new password", 3.0)

    home.run(until=30.0)

    print("\nLogin outcomes through the gateway:")
    for label, outcome in outcomes.items():
        print(f"  {label:35s} -> {outcome}")
    print(f"\nLogins that reached the camera itself: {len(cam.login_log)}")
    print(f"Gateway alerts: {[a.kind for a in home.alerts('cam')]}")
    print("\nThe flaw is still in the firmware -- it is simply unreachable.")


if __name__ == "__main__":
    main()
