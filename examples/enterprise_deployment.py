#!/usr/bin/env python3
"""An enterprise deployment: many rooms, one security cluster.

Section 2.2: "we assume the enterprise has a well-provisioned on-premise
cluster with a pool of commodity server machines.  Each IoT device's
first-hop edge router or wireless access point is configured to tunnel
packets to/from the device to the cluster."

This example builds a three-floor office with per-floor access switches,
devices on each floor tunnelling through the core to the shared cluster,
flaw-informed baseline postures, and a sweep of attacks from the Internet.

Run:  python examples/enterprise_deployment.py
"""

from repro import SecuredDeployment, build_recommended_posture
from repro.attacks.exploits import EXPLOITS
from repro.core.metrics import summarize
from repro.devices.library import (
    WEMO_BACKDOOR_PORT,
    set_top_box,
    smart_camera,
    smart_plug,
    thermostat,
)


def main() -> None:
    office = SecuredDeployment.build()
    floors = ["floor1", "floor2", "floor3"]
    for floor in floors:
        office.add_room(floor)

    # a device mix per floor
    for i, floor in enumerate(floors):
        office.add_device(smart_camera, f"cam-{floor}", room=floor)
        office.add_device(smart_plug, f"plug-{floor}", room=floor)
    office.add_device(set_top_box, "lobby-stb", room="floor1")
    office.add_device(thermostat, "hvac", room="floor2")
    attacker = office.add_attacker()
    office.finalize()

    # flaw-informed baseline postures, straight from the firmware census
    trusted = (office.HUB, office.CONTROLLER)
    for name, device in office.devices.items():
        flaws = device.firmware.flaw_classes()
        if "exposed-credentials" in flaws or "weak-credentials" in flaws:
            posture = build_recommended_posture(
                "password_proxy", name, new_password="Corp0rate!"
            )
        elif flaws & {"backdoor", "exposed-access"}:
            posture = build_recommended_posture(
                "stateful_firewall", name, trusted_sources=trusted
            )
        else:
            posture = build_recommended_posture("monitor", name, sku=device.sku)
        office.secure(name, posture)
    office.run(until=1.0)

    print(f"Office: {len(floors)} floors, {len(office.devices)} devices, "
          f"{office.manager.active_count()} µmboxes on one cluster\n")

    # the attack sweep
    results = {}
    results["cred cam-floor3"] = EXPLOITS["default_credential_hijack"].launch(
        attacker, "cam-floor3", office.sim
    )
    results["backdoor plug-floor2"] = EXPLOITS["backdoor_command"].launch(
        attacker, "plug-floor2", office.sim,
        backdoor_port=WEMO_BACKDOOR_PORT, command="on",
    )
    results["open-access lobby-stb"] = EXPLOITS["open_access_control"].launch(
        attacker, "lobby-stb", office.sim, port=8080, command="play"
    )
    office.run(until=60.0)

    print("Attack sweep from the Internet:")
    for label, result in results.items():
        print(f"  {label:28s} -> {'EXPLOITED' if result.succeeded else 'blocked'}")

    print()
    print(summarize(office).render())


if __name__ == "__main__":
    main()
