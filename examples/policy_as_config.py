#!/usr/bin/env python3
"""Policies as reviewable configuration.

Security policy belongs in version control: export the running policy as
JSON, review/edit it like code, load it back, enforce it.  This example
round-trips a policy through a file, tightens it with one extra rule "in
review", and shows the deployment honouring the loaded version.

Run:  python examples/policy_as_config.py
"""

import json
import tempfile

from repro import SecuredDeployment
from repro.devices.library import smart_camera, window_actuator
from repro.policy import serialization
from repro.policy.conflicts import full_report


def main() -> None:
    # 1. A deployment generates its default policy.
    home = SecuredDeployment.build()
    home.add_device(smart_camera, "cam")
    home.add_device(window_actuator, "window")
    home.finalize()
    print(f"default policy: {home.policy}")

    # 2. Export to a file (this is what you would commit).
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as handle:
        path = handle.name
    serialization.save(home.policy, path)
    print(f"exported to {path}")

    # 3. "Review": edit the JSON -- a teammate adds a cross-device rule.
    with open(path) as handle:
        config = json.load(handle)
    config["rules"].append(
        {
            "when": {"ctx:cam": "suspicious"},
            "device": "window",
            "priority": 250,
            "posture": {
                "name": "reviewed-addition",
                "modules": [
                    {"kind": "command_filter", "config": {"deny": ["open"]}}
                ],
            },
        }
    )
    with open(path, "w") as handle:
        json.dump(config, handle, indent=2)
    print("review added: suspicious camera => window refuses 'open'")

    # 4. Load, lint, deploy.
    policy = serialization.load(path)
    problems = [c for c in full_report(policy) if c.severity == "error"]
    print(f"policy lint: {len(problems)} errors")

    home2 = SecuredDeployment.build(policy=policy)
    home2.add_device(smart_camera, "cam")
    home2.add_device(window_actuator, "window")
    home2.finalize()
    home2.controller.set_context("cam", "suspicious")
    posture = home2.orchestrator.posture_of("window")
    print(f"after escalation, window posture: {posture.name}")
    assert posture.name == "reviewed-addition"
    print("the deployment enforces exactly what the reviewed file says.")


if __name__ == "__main__":
    main()
